"""Protocol edge cases and error paths in provisioning."""

from __future__ import annotations

import struct

import pytest

from repro.core import EnclaveClient, PolicyRegistry, provision
from repro.core.provisioning import _CONTENT_HEADER
from repro.errors import ProtocolError
from repro.net import SocketPair
from tests.conftest import small_provider


class TestContentFraming:
    def _session_with_channel(self, all_policies, payload_builder):
        provider = small_provider(all_policies)
        pair = SocketPair()
        session = provider.start_session(pair.right)
        from repro.crypto import HmacDrbg
        from repro.crypto.channel import client_handshake

        channel, _ = client_handshake(pair.left, HmacDrbg(b"c"))
        payload_builder(channel)
        return provider, session

    def test_truncated_content_rejected(self, all_policies):
        def build(channel):
            channel.send(_CONTENT_HEADER.pack(1000, 2))
            channel.send(b"x" * 100)  # announces 1000, sends 100 in 1 record
            channel.send(b"")

        provider, session = self._session_with_channel(all_policies, build)
        with pytest.raises(ProtocolError, match="truncated"):
            provider.run_engarde(session)

    def test_oversized_announcement_rejected(self, all_policies):
        def build(channel):
            channel.send(_CONTENT_HEADER.pack(1 << 40, 1))

        provider, session = self._session_with_channel(all_policies, build)
        with pytest.raises(ProtocolError, match="sane"):
            provider.run_engarde(session)

    def test_malformed_header_rejected(self, all_policies):
        def build(channel):
            channel.send(b"tiny")

        provider, session = self._session_with_channel(all_policies, build)
        with pytest.raises(ProtocolError, match="header"):
            provider.run_engarde(session)

    def test_finalize_before_run_rejected(self, all_policies):
        provider = small_provider(all_policies)
        pair = SocketPair()
        session = provider.start_session(pair.right)
        with pytest.raises(ProtocolError):
            provider.finalize(session)


class TestClientStates:
    def test_send_before_channel(self, all_policies, demo_plain):
        client = EnclaveClient(demo_plain.elf, policies=all_policies)
        with pytest.raises(ProtocolError):
            client.send_content()
        with pytest.raises(ProtocolError):
            client.receive_verdict()

    def test_challenge_is_fresh(self, all_policies, demo_plain):
        client = EnclaveClient(demo_plain.elf, policies=all_policies)
        assert client.challenge() != client.challenge()


class TestResourceSizing:
    def test_image_too_big_for_client_region(self, all_policies,
                                             demo_instrumented):
        provider = small_provider(all_policies, client_pages=4)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        result = provision(provider, client)
        assert not result.accepted
        assert result.report.rejected_stage == "load"

    def test_trampolines_counted(self, all_policies, demo_instrumented):
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        provision(provider, client)
        # at minimum: socket registration + content records + buffer mallocs
        # all exited/re-entered the enclave
        runtime_list = list(provider.host.runtimes.values())
        assert runtime_list[0].trampoline_calls > 3


class TestPerInsnMallocProvider:
    def test_ablation_config_costs_more(self, all_policies, demo_instrumented):
        def total_cycles(per_insn):
            provider = small_provider(all_policies, per_insn_malloc=per_insn)
            client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
            result = provision(provider, client)
            assert result.accepted
            return result.meter.phase_cycles("disassembly")

        assert total_cycles(True) > 2 * total_cycles(False)
