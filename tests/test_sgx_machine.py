"""SGX instruction layer: lifecycle, measurement, SGX2, cycle charging."""

from __future__ import annotations

import pytest

from repro.errors import EnclaveSealedError, SgxError
from repro.sgx import (
    EnclaveState, Measurement, PagePermissions, SgxMachine, SgxParams,
)
from repro.sgx.params import PAGE_SIZE

BASE = 0x10000
SIZE = 0x40000


@pytest.fixture()
def machine():
    return SgxMachine(SgxParams(epc_pages=64, heap_initial_pages=4))


def build_minimal(machine, content=b"bootstrap"):
    enclave = machine.ecreate(BASE, SIZE)
    machine.add_measured_page(enclave, BASE, content)
    machine.einit(enclave)
    return enclave


class TestLifecycle:
    def test_create_add_init(self, machine):
        enclave = machine.ecreate(BASE, SIZE)
        assert enclave.state is EnclaveState.PENDING
        machine.add_measured_page(enclave, BASE, b"code")
        mrenclave = machine.einit(enclave)
        assert enclave.state is EnclaveState.INITIALIZED
        assert len(mrenclave) == 32

    def test_unaligned_rejected(self, machine):
        with pytest.raises(SgxError):
            machine.ecreate(BASE + 1, SIZE)
        enclave = machine.ecreate(BASE, SIZE)
        with pytest.raises(SgxError):
            machine.eadd(enclave, BASE + 7)

    def test_page_outside_elrange(self, machine):
        enclave = machine.ecreate(BASE, SIZE)
        with pytest.raises(SgxError):
            machine.eadd(enclave, BASE + SIZE)

    def test_double_map_rejected(self, machine):
        enclave = machine.ecreate(BASE, SIZE)
        machine.eadd(enclave, BASE)
        with pytest.raises(SgxError):
            machine.eadd(enclave, BASE)

    def test_eadd_after_einit_rejected(self, machine):
        enclave = build_minimal(machine)
        with pytest.raises(SgxError):
            machine.eadd(enclave, BASE + PAGE_SIZE)

    def test_enter_exit(self, machine):
        enclave = build_minimal(machine)
        machine.eenter(enclave)
        assert enclave.entered == 1
        machine.eexit(enclave)
        assert enclave.entered == 0
        with pytest.raises(SgxError):
            machine.eexit(enclave)

    def test_enter_before_init_rejected(self, machine):
        enclave = machine.ecreate(BASE, SIZE)
        with pytest.raises(SgxError):
            machine.eenter(enclave)

    def test_eremove_running_enclave_rejected(self, machine):
        enclave = build_minimal(machine)
        machine.eenter(enclave)
        with pytest.raises(SgxError):
            machine.eremove(enclave, BASE)

    def test_destroy_releases_epc(self, machine):
        before = machine.epc.free_pages
        enclave = build_minimal(machine)
        assert machine.epc.free_pages == before - 1
        machine.destroy(enclave)
        assert machine.epc.free_pages == before


class TestMeasurement:
    def test_identical_builds_identical_mrenclave(self):
        def build():
            m = SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=2),
                           hardware_seed=b"any")
            e = m.ecreate(BASE, SIZE)
            m.add_measured_page(e, BASE, b"content-a")
            m.add_measured_page(e, BASE + PAGE_SIZE, b"content-b")
            return m.einit(e)

        assert build() == build()

    def test_content_changes_measurement(self, machine):
        a = build_minimal(machine, b"version-one")
        b = build_minimal(machine, b"version-two")
        assert a.mrenclave != b.mrenclave

    def test_page_order_changes_measurement(self):
        def build(order):
            m = SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=2))
            e = m.ecreate(BASE, SIZE)
            for vaddr in order:
                m.add_measured_page(e, vaddr, b"x")
            return m.einit(e)

        assert build([BASE, BASE + PAGE_SIZE]) != build([BASE + PAGE_SIZE, BASE])

    def test_permissions_are_measured(self):
        def build(perms):
            m = SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=2))
            e = m.ecreate(BASE, SIZE)
            m.eadd(e, BASE, b"x", perms=perms)
            return m.einit(e)

        rwx = build(PagePermissions(True, True, True))
        rw = build(PagePermissions(True, True, False))
        assert rwx != rw

    def test_mrenclave_before_einit_raises(self, machine):
        enclave = machine.ecreate(BASE, SIZE)
        with pytest.raises(SgxError):
            _ = enclave.mrenclave

    def test_measurement_object_freezes(self):
        m = Measurement()
        m.ecreate(0, 0x1000, 0)
        first = m.finalize()
        assert m.finalize() == first
        with pytest.raises(SgxError):
            m.eadd(0x1000, "REG", "rwx")


class TestMemoryAccess:
    def test_rw_inside_enclave(self, machine):
        enclave = build_minimal(machine)
        enclave.write(BASE + 100, b"hello")
        assert enclave.read(BASE + 100, 5) == b"hello"

    def test_cross_page_write(self, machine):
        enclave = machine.ecreate(BASE, SIZE)
        machine.eadd(enclave, BASE)
        machine.eadd(enclave, BASE + PAGE_SIZE)
        machine.einit(enclave)
        data = b"Z" * 100
        enclave.write(BASE + PAGE_SIZE - 50, data)
        assert enclave.read(BASE + PAGE_SIZE - 50, 100) == data

    def test_unmapped_page_faults(self, machine):
        enclave = build_minimal(machine)
        with pytest.raises(SgxError):
            enclave.read(BASE + 8 * PAGE_SIZE, 4)

    def test_outside_elrange_faults(self, machine):
        enclave = build_minimal(machine)
        with pytest.raises(SgxError):
            enclave.read(BASE - 1, 4)
        with pytest.raises(SgxError):
            enclave.write(BASE + SIZE - 2, b"abcd")

    def test_execute_permission_enforced(self, machine):
        enclave = machine.ecreate(BASE, SIZE)
        machine.eadd(enclave, BASE, b"\x90" * 16,
                     perms=PagePermissions(True, True, False))
        machine.einit(enclave)
        with pytest.raises(SgxError):
            enclave.fetch_code(BASE, 4)


class TestSgx2:
    def test_eaug_post_init(self, machine):
        enclave = build_minimal(machine)
        machine.eaug(enclave, BASE + PAGE_SIZE)
        enclave.write(BASE + PAGE_SIZE, b"dynamic")
        assert enclave.read(BASE + PAGE_SIZE, 7) == b"dynamic"

    def test_eaug_requires_sgx2(self):
        machine = SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=2, sgx2=False))
        enclave = build_minimal(machine)
        with pytest.raises(SgxError, match="SGX2"):
            machine.eaug(enclave, BASE + PAGE_SIZE)

    def test_emodpr_restricts_only(self, machine):
        enclave = build_minimal(machine)
        machine.emodpr(enclave, BASE, PagePermissions(True, False, True))
        with pytest.raises(SgxError):
            enclave.write(BASE, b"x")
        # extending back via EMODPR is rejected
        with pytest.raises(SgxError):
            machine.emodpr(enclave, BASE, PagePermissions(True, True, True))

    def test_emodpe_requires_enclave_context(self, machine):
        enclave = build_minimal(machine)
        machine.emodpr(enclave, BASE, PagePermissions(True, False, False))
        with pytest.raises(SgxError):
            machine.emodpe(enclave, BASE, PagePermissions(True, True, False))
        machine.eenter(enclave)
        machine.emodpe(enclave, BASE, PagePermissions(True, True, False))
        enclave.write(BASE, b"y")

    def test_emodpr_requires_sgx2(self):
        machine = SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=2, sgx2=False))
        enclave = build_minimal(machine)
        with pytest.raises(SgxError, match="SGX2"):
            machine.emodpr(enclave, BASE, PagePermissions(True, False, True))

    def test_sealed_enclave_rejects_eaug(self, machine):
        enclave = build_minimal(machine)
        enclave.sealed = True
        with pytest.raises(EnclaveSealedError):
            machine.eaug(enclave, BASE + PAGE_SIZE)


class TestCycleCharging:
    def test_sgx_instructions_charged(self):
        machine = SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=2))
        enclave = machine.ecreate(BASE, SIZE)          # 1
        machine.add_measured_page(enclave, BASE, b"")  # 1 EADD + 16 EEXTEND
        machine.einit(enclave)                          # 1
        machine.eenter(enclave)                         # 1
        machine.eexit(enclave)                          # 1
        assert machine.meter.sgx_instruction_count == 21
        assert machine.meter.total_cycles == 21 * 10_000

    def test_cost_model_override(self):
        from repro.sgx import CostModel, CycleMeter

        meter = CycleMeter(CostModel().replace(sgx_instruction=5))
        machine = SgxMachine(
            SgxParams(epc_pages=16, heap_initial_pages=2), meter=meter
        )
        machine.ecreate(BASE, SIZE)
        assert machine.meter.total_cycles == 5
