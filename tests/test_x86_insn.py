"""Instruction record: classification helpers and formatting."""

from __future__ import annotations

import pytest

from repro.x86 import Enc, Imm, Instruction, Mem, RAX, RCX, RSP, decode_one


def insn(encoded: bytes) -> Instruction:
    return decode_one(encoded, 0)


class TestClassification:
    def test_direct_vs_indirect_call(self):
        direct = insn(Enc.call_rel32(0x10))
        indirect = insn(Enc.call_rm(RCX))
        assert direct.is_direct_call and not direct.is_indirect_call
        assert indirect.is_indirect_call and not indirect.is_direct_call

    def test_jumps(self):
        direct = insn(Enc.jmp_rel32(8))
        indirect = insn(Enc.jmp_rm(RAX))
        assert direct.is_direct_jump and direct.is_terminator
        assert indirect.is_indirect_jump and indirect.is_terminator

    def test_conditional_branch_not_terminator(self):
        jne = insn(Enc.jcc_rel8("jne", 2))
        assert jne.is_conditional_branch
        assert not jne.is_terminator
        assert jne.is_control_transfer

    def test_return(self):
        ret = insn(Enc.ret())
        assert ret.is_return and ret.is_terminator and ret.is_control_transfer

    def test_plain_op_is_nothing_special(self):
        mov = insn(Enc.mov_rr(RAX, RCX))
        assert not mov.is_control_transfer
        assert not mov.is_terminator
        assert not mov.is_conditional_branch

    def test_ud2_terminates(self):
        assert insn(Enc.ud2()).is_terminator

    def test_reads_fs_offset(self):
        canary = insn(Enc.mov_load(Mem(seg="fs", disp=0x28), RAX))
        assert canary.reads_fs_offset(0x28)
        assert not canary.reads_fs_offset(0x30)
        other = insn(Enc.mov_load(Mem(base=RSP, disp=0x28), RAX))
        assert not other.reads_fs_offset(0x28)

    def test_memory_operand_helper(self):
        store = insn(Enc.mov_store(RAX, Mem(base=RSP, disp=8)))
        assert store.memory_operand().disp == 8
        assert insn(Enc.mov_rr(RAX, RCX)).memory_operand() is None


class TestFormatting:
    def test_str_includes_offset_and_mnemonic(self):
        text = str(insn(Enc.mov_rr(RAX, RCX)))
        assert "mov" in text and "%rax" in text and "%rcx" in text

    def test_mem_formatting(self):
        assert str(Mem(seg="fs", disp=0x28)) == "%fs:0x28"
        assert str(Mem(base=RSP)) == "(%rsp)"
        assert str(Mem(base=RSP, disp=16)) == "0x10(%rsp)"
        assert str(Mem(rip_relative=True, disp=0x85C70)) == "0x85c70(%rip)"
        assert "%rcx" in str(Mem(base=RAX, index=RCX, scale=8))

    def test_imm_formatting(self):
        assert str(Imm(0x1FF8, 4)) == "$0x1ff8"

    def test_branch_target_formatting(self):
        text = str(insn(Enc.call_rel32(0x100)))
        assert "->" in text


class TestMemValidation:
    def test_bad_scale(self):
        with pytest.raises(ValueError):
            Mem(base=RAX, index=RCX, scale=3)

    def test_rip_with_base_rejected(self):
        with pytest.raises(ValueError):
            Mem(rip_relative=True, base=RAX)
