"""Cross-cutting determinism: the whole stack is a pure function of seeds.

Determinism is what makes the evaluation reproducible bit-for-bit and the
mutual-trust measurement predictable; these tests pin it at every layer.
"""

from __future__ import annotations

import pytest

from repro.core import PolicyRegistry, expected_mrenclave
from repro.core.policies import LibraryLinkingPolicy
from repro.crypto import HmacDrbg, generate_keypair
from repro.sgx import CycleMeter, SgxMachine, SgxParams
from repro.toolchain import Compiler, CompilerFlags, build_libc, link
from tests.conftest import make_demo_spec


class TestSeededDeterminism:
    def test_rsa_keygen(self):
        a = generate_keypair(512, HmacDrbg(b"k"))
        b = generate_keypair(512, HmacDrbg(b"k"))
        assert a == b

    def test_libc_hash_db_stable(self, libc):
        again = build_libc("1.0.5")
        assert again.reference_hashes() == libc.reference_hashes()

    def test_compiled_program_bytes_stable(self, libc):
        a = link(Compiler(CompilerFlags(True, True)).compile(make_demo_spec("d1")), libc)
        b = link(Compiler(CompilerFlags(True, True)).compile(make_demo_spec("d1")), libc)
        assert a.elf == b.elf
        assert a.symbols == b.symbols

    def test_program_name_seeds_bodies(self, libc):
        a = link(Compiler().compile(make_demo_spec("alpha")), libc)
        b = link(Compiler().compile(make_demo_spec("beta")), libc)
        # same shape, different generated bodies
        assert a.elf != b.elf

    def test_expected_mrenclave_stable(self, libc):
        policies = PolicyRegistry([LibraryLinkingPolicy(libc.reference_hashes())])
        kwargs = dict(heap_pages=16, client_pages=8, enclave_pages=0x1000)
        assert expected_mrenclave(policies, **kwargs) == expected_mrenclave(
            policies, **kwargs
        )

    def test_mrenclave_sensitive_to_every_shape_knob(self, libc):
        policies = PolicyRegistry([LibraryLinkingPolicy(libc.reference_hashes())])
        base = expected_mrenclave(
            policies, heap_pages=16, client_pages=8, enclave_pages=0x1000
        )
        assert base != expected_mrenclave(
            policies, heap_pages=17, client_pages=8, enclave_pages=0x1000
        )
        assert base != expected_mrenclave(
            policies, heap_pages=16, client_pages=9, enclave_pages=0x1000
        )
        assert base != expected_mrenclave(
            policies, heap_pages=16, client_pages=8, enclave_pages=0x1001
        )

    def test_machine_seed_changes_keys_not_measurement(self):
        def build(seed):
            m = SgxMachine(
                SgxParams(epc_pages=8, heap_initial_pages=1),
                hardware_seed=seed,
            )
            e = m.ecreate(0x10000, 0x10000)
            m.add_measured_page(e, 0x10000, b"x")
            m.einit(e)
            return m, e

        m1, e1 = build(b"machine-a")
        m2, e2 = build(b"machine-b")
        # measurement is machine-independent (a build recipe)...
        assert e1.mrenclave == e2.mrenclave
        # ...but the hardware-rooted report keys are not interchangeable
        report = m1.ereport(e1, b"d")
        assert not m2.verify_report(report)

    def test_cycle_totals_stable_across_runs(self, libc, demo_plain):
        from repro.core import Disassembler

        def cycles():
            meter = CycleMeter()
            Disassembler(meter).run(demo_plain.elf)
            return meter.total_cycles

        assert cycles() == cycles()
