"""Concurrency battery for the inspection daemon.

Many threads × many attested clients hammer one warm daemon; every
verdict that comes back over a secure channel must serialize
byte-identically to what a lone sequential ``EnGarde.inspect`` produces
for the same binary (the same oracle the batch differential suite
uses).  On top of byte identity: no dropped responses, no duplicated
responses, and cache/metrics accounting that adds up exactly.

The final test is the PR's acceptance run: 16 concurrent clients
against the warm daemon under a *seeded fault plan*, with a hard
wall-clock bound standing in for "zero protocol hangs".
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import EnGarde
from repro.core.provisioning import ResilienceConfig
from repro.faults.chaos import _TYPED_ERROR
from repro.faults.clock import FakeClock
from repro.faults.hooks import injected
from repro.faults.plan import FaultPlan
from repro.service import generate_variant_corpus

from tests.conftest import daemon_client, small_daemon

CORPUS_SIZE = 18
#: wall-clock ceiling for any single concurrent run — the "no hangs" bound
MAX_WALL_SECONDS = 120.0


@pytest.fixture(scope="module")
def corpus(libc):
    return generate_variant_corpus(CORPUS_SIZE, libc=libc)


@pytest.fixture(scope="module")
def baseline(corpus, all_policies):
    """Sequential ground truth: one EnGarde, one binary at a time."""
    engarde = EnGarde(all_policies)
    return {
        label: engarde.inspect(raw, benchmark=label).report.serialize()
        for label, raw in corpus
    }


@pytest.fixture(scope="module")
def daemon(all_policies):
    d = small_daemon(all_policies, pool_size=2, max_connections=32)
    yield d
    d.stop()


def _hammer(daemon, policies, corpus, n_clients, *, rotate=True,
            resilience=None, timeout=5.0):
    """n_clients threads, each with its own attested connection, each
    submitting the full corpus (in a per-thread rotation so threads are
    never in lockstep).  Returns {thread: [(label, verdict), ...]}."""
    results: dict[int, list] = {i: [] for i in range(n_clients)}
    errors: list[BaseException] = []

    def worker(tid: int) -> None:
        client = daemon_client(
            daemon, policies, resilience=resilience, timeout=timeout,
        )
        try:
            order = (
                corpus[tid % len(corpus):] + corpus[:tid % len(corpus)]
                if rotate else corpus
            )
            for label, raw in order:
                # inspect() owns connect/attest/retry — even a fault that
                # kills the handshake surfaces as a typed verdict here
                results[tid].append((label, client.inspect(raw, label)))
            if client.connected:
                # one response per request: nothing may still be queued
                assert client._sock.pending() == 0
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"client-{i}")
        for i in range(n_clients)
    ]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join(MAX_WALL_SECONDS)
    wall = time.monotonic() - t0
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"protocol hang: {hung} still alive after {wall:.0f}s"
    assert not errors, errors
    assert wall < MAX_WALL_SECONDS
    return results


def test_concurrent_clients_match_serial_oracle(
    daemon, all_policies, corpus, baseline
):
    """8 clients × full corpus: every verdict byte-identical, none lost."""
    n_clients = 8
    results = _hammer(daemon, all_policies, corpus, n_clients)
    total = 0
    for tid, verdicts in results.items():
        # no dropped responses: one verdict per submission, in order
        assert [lbl for lbl, _ in verdicts] == [
            lbl for lbl, _ in
            corpus[tid % len(corpus):] + corpus[:tid % len(corpus)]
        ]
        for label, v in verdicts:
            assert v.error is None, (label, v.error)
            assert v.report is not None
            # the oracle: byte-identical to sequential EnGarde
            assert v.wire == baseline[label], label
            total += 1
    assert total == n_clients * len(corpus)


def test_cache_and_metrics_accounting_is_consistent(
    daemon, all_policies, corpus
):
    """After a clean hammer run the daemon's books must balance."""
    before = dict(daemon.metrics.snapshot()["counters"])
    n_clients = 4
    _hammer(daemon, all_policies, corpus, n_clients)
    after = daemon.metrics.snapshot()["counters"]
    submitted = after["requests.SUBMIT"] - before["requests.SUBMIT"]
    assert submitted == n_clients * len(corpus)
    outcomes = sum(
        after[k] - before[k]
        for k in ("submits.accepted", "submits.rejected", "submits.errors")
    )
    # every submission produced exactly one verdict-class outcome
    assert outcomes == submitted
    # the corpus was warm (previous test) — everything after is a hit
    hits = after["submits.cache_hits"] - before["submits.cache_hits"]
    assert hits == submitted
    # content addressing: the cache never holds more than the unique keys
    assert len(daemon.cache) <= len(corpus)
    stats = daemon.cache.stats().as_dict()
    assert stats["hits"] >= hits
    # latency histograms saw every request
    hist = daemon.metrics.histograms["request"]
    assert hist.count >= submitted


def test_acceptance_16_clients_seeded_faults_no_hangs(
    daemon, all_policies, corpus, baseline
):
    """The PR acceptance run.

    16 concurrent clients against the warm daemon under a seeded fault
    plan covering the socket, channel, and worker hook sites.  Every
    report that comes back must be byte-identical to the serial oracle;
    everything else must be a typed fail-closed error; the whole run
    must finish inside the wall bound (zero protocol hangs); and
    STATUS/METRICS must then show non-trivial cache and latency data.
    """
    # warm the verdict cache so the run exercises the hot path
    warm = daemon_client(daemon, all_policies)
    with warm:
        for label, raw in corpus:
            warm.inspect(raw, label)

    plan = FaultPlan.randomized(
        seed=1337,
        hooks=(
            "net.sock.send", "net.sock.recv",
            "crypto.channel.send", "crypto.channel.recv",
            "service.batch.worker", "service.batch.verdict",
        ),
        n_specs=4,
        probability=0.1,
        clock=FakeClock(),
        hang_seconds=30.0,
    )
    resilience = ResilienceConfig(
        max_retransmits=3, backoff_base=0.0, clock=FakeClock()
    )
    with injected(plan):
        results = _hammer(
            daemon, all_policies, corpus, 16,
            resilience=resilience, timeout=2.0,
        )

    delivered = 0
    typed_failures = 0
    for verdicts in results.values():
        for label, v in verdicts:
            if v.report is not None:
                # byte-identical or it did not happen — faults may delay
                # or kill a verdict, never corrupt one
                assert v.wire == baseline[label], label
                delivered += 1
            else:
                assert v.error is not None
                assert _TYPED_ERROR.match(v.error), (label, v.error)
                typed_failures += 1
    total = 16 * len(corpus)
    assert delivered + typed_failures == total
    # retries must actually be recovering: most submissions succeed
    assert delivered >= total // 2, (delivered, typed_failures)

    # STATUS/METRICS report non-trivial data after the storm
    probe = daemon_client(daemon, all_policies)
    status = probe.status()
    assert status["status"] == "ok"
    metrics = probe.metrics()
    counters = metrics["counters"]
    assert counters["requests.SUBMIT"] >= total
    assert counters["submits.cache_hits"] > 0
    cache = metrics["cache"]
    assert cache["hits"] > 0 and 0.0 < cache["hit_ratio"] <= 1.0
    for stage in ("attest", "handshake", "inspect", "request"):
        assert metrics["latency"][stage]["count"] > 0, stage
    assert metrics["resilience"]["retries"] == 0  # daemon-side layer idle
    assert metrics["pool"]["checkouts"] > 16
