"""Differential equivalence of the optimized hot path vs the frozen reference.

PR 3 rebuilt the static-inspection hot path (dispatch-table decoder,
batched metering, shared policy prescan, library-linking digest index) under
one invariant: **optimize wall-clock, never observable behaviour**.  These
tests pin that invariant corpus-wide:

* the table-driven decoder matches ``repro.x86.refdecode`` instruction-for-
  instruction and error-for-error,
* ``CycleMeter.charge_batch`` is tick-identical to per-occurrence charging,
* the optimized pipeline produces byte-identical ``ComplianceReport`` wire
  text, identical ``PolicyResult.stats``, and identical meter totals (per
  phase, per event) over the golden fixtures and the service variant
  corpus — the same check the perf-smoke benchmark runs in CI.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import (
    EnGarde,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)
from repro.errors import DecodeError
from repro.sgx.cpu import CycleMeter
from repro.service import generate_variant_corpus
from repro.x86 import decode_all, decode_one
from repro.x86.refdecode import ref_decode_all, ref_decode_one

GOLDEN = Path(__file__).parent / "fixtures" / "golden"
GOLDEN_BINARIES = ("instrumented", "plain", "truncated", "garbage")
POLICY_NAMES = ("library-linking", "stack-protection", "indirect-function-call")
CORPUS_SIZE = 26  # two full rotations of the 13 variant kinds


@pytest.fixture(scope="module")
def libc():
    from repro.toolchain import build_libc

    return build_libc()


def _frozen_policy(name: str, config: dict):
    if name == "library-linking":
        return LibraryLinkingPolicy({
            fn: bytes.fromhex(digest)
            for fn, digest in config["reference_hashes"].items()
        })
    if name == "stack-protection":
        return StackProtectionPolicy(
            exempt_functions=set(config["exempt_functions"])
        )
    return IfccPolicy()


def _assert_equivalent(blob: bytes, label: str, make_registry) -> None:
    """Both pipelines over *blob*: reports, stats, and meter must match."""
    meter_opt, meter_ref = CycleMeter(), CycleMeter()
    opt = EnGarde(make_registry(), meter_opt, optimized=True).inspect(
        blob, benchmark=label
    )
    ref = EnGarde(make_registry(), meter_ref, optimized=False).inspect(
        blob, benchmark=label
    )
    assert opt.report.serialize() == ref.report.serialize(), label
    assert [r.stats for r in opt.policy_results] == [
        r.stats for r in ref.policy_results
    ], label
    # PhaseBreakdown equality covers cycles, sgx counts, AND the per-event
    # counts — so batched charging cannot hide behind matching totals.
    assert meter_opt.phases == meter_ref.phases, label
    assert meter_opt.total == meter_ref.total, label


# ---------------------------------------------------------------- decoder

def test_decoder_matches_reference_on_golden_text():
    """Stream equivalence on real generated code (the golden binaries)."""
    from repro.elf import read_elf

    checked = 0
    for name in ("instrumented", "plain"):
        blob = (GOLDEN / f"{name}.bin").read_bytes()
        code = bytes(read_elf(blob).text_sections[0].data)
        new = decode_all(code)
        old = ref_decode_all(code)
        assert new == old, name
        checked += len(new)
    assert checked > 1000  # the corpus actually exercised the decoder


def test_decoder_matches_reference_on_byte_fuzz():
    """Same instruction *or* same DecodeError message, byte-for-byte."""
    from repro.crypto import HmacDrbg

    rng = HmacDrbg(b"decoder-differential")
    for trial in range(3000):
        blob = bytes(rng.generate(1 + trial % 18))
        try:
            new = decode_one(blob, 0)
            new_err = None
        except DecodeError as exc:
            new, new_err = None, str(exc)
        try:
            old = ref_decode_one(blob, 0)
            old_err = None
        except DecodeError as exc:
            old, old_err = None, str(exc)
        assert (new, new_err) == (old, old_err), blob.hex()


def test_decoder_fast_construction_matches_dataclass_constructor():
    """The __dict__-built Instruction equals a constructor-built one."""
    from repro.x86.insn import Instruction

    insn = decode_one(bytes.fromhex("4889e5"), 0)  # mov %rsp,%rbp
    rebuilt = Instruction(
        offset=insn.offset,
        raw=insn.raw,
        mnemonic=insn.mnemonic,
        operands=insn.operands,
        num_prefix_bytes=insn.num_prefix_bytes,
        num_opcode_bytes=insn.num_opcode_bytes,
        num_displacement_bytes=insn.num_displacement_bytes,
        num_immediate_bytes=insn.num_immediate_bytes,
        has_modrm=insn.has_modrm,
        target=insn.target,
    )
    assert rebuilt == insn
    assert hash((insn.offset, insn.raw)) == hash((rebuilt.offset, rebuilt.raw))


# --------------------------------------------------------------- metering

def test_charge_batch_matches_per_occurrence_charging():
    """Identical cycles AND identical per-event counts, per phase."""
    batched, severally = CycleMeter(), CycleMeter()
    counts = {"decode_byte": 371, "decode_insn": 98, "buffer_store": 98,
              "policy_compare": 0}

    with batched.phase("disassembly"):
        batched.charge_batch(counts)
    with severally.phase("disassembly"):
        for event, count in counts.items():
            for _ in range(count):
                severally.charge(event)

    assert batched.total == severally.total
    assert batched.phases == severally.phases
    # Zero-count events must not materialise spurious keys.
    assert "policy_compare" not in batched.total.events


def test_charge_batch_rejects_unknown_event():
    meter = CycleMeter()
    with pytest.raises(KeyError):
        meter.charge_batch({"decode_insn": 1, "no-such-event": 2})


def test_charge_batch_returns_total_cycles():
    meter = CycleMeter()
    cycles = meter.charge_batch({"decode_insn": 3, "decode_byte": 10})
    assert cycles == (3 * meter.cost.decode_insn
                      + 10 * meter.cost.decode_byte)
    assert meter.total_cycles == cycles


# --------------------------------------------------------------- pipeline

@pytest.mark.parametrize("fixture_name", GOLDEN_BINARIES)
@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_pipeline_differential_golden(fixture_name, policy_name):
    """Golden corpus: accept, policy-reject, and structural-reject paths."""
    config = json.loads((GOLDEN / "policy_config.json").read_text())
    blob = (GOLDEN / f"{fixture_name}.bin").read_bytes()
    _assert_equivalent(
        blob, fixture_name,
        lambda: PolicyRegistry([_frozen_policy(policy_name, config)]),
    )


def test_pipeline_differential_variant_corpus(libc):
    """Service corpus: every variant kind (incl. truncated/garbage/dup)
    through all three policies at once."""
    def make_registry():
        return PolicyRegistry([
            LibraryLinkingPolicy(libc.reference_hashes()),
            StackProtectionPolicy(exempt_functions=set(libc.offsets)),
            IfccPolicy(),
        ])

    corpus = generate_variant_corpus(CORPUS_SIZE, libc=libc)
    assert len(corpus) == CORPUS_SIZE
    for label, blob in corpus:
        _assert_equivalent(blob, label, make_registry)
