"""Crash-recovery property battery for the on-disk verdict store.

The :class:`~repro.service.VerdictStore` is the fleet's durable tier,
and its contract is absolute: **every** corruption path — torn write,
truncated blob, bitflip, a blob filed under the wrong key, a temp file
left by an interrupted publish — surfaces as a typed
:class:`~repro.errors.StoreError` (or a clean miss at the degraded
:meth:`get`/:class:`TieredCache` layer) and the offending blob is
discarded.  A corrupt blob must never be served as a verdict hit.

The battery covers the satellite checklist explicitly: torn write,
digest mismatch, duplicate publish, and a concurrent reader racing a
compaction — plus hypothesis sweeps over arbitrary payloads and
truncation points.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.service import (
    InspectionCache,
    TieredCache,
    VerdictStore,
    ZERO_STORE,
    cache_key,
    generate_variant_corpus,
)
from repro.service.store import _BLOB_HEADER, _DIGEST_LEN


KEY = ("a" * 64, "b" * 64)
OTHER = ("c" * 64, "d" * 64)


@pytest.fixture()
def store(tmp_path):
    return VerdictStore(tmp_path / "store", fsync=False)


def _blob_path(store: VerdictStore, key) -> "Path":
    return store._path_for(key)


# --------------------------------------------------------------- round trip


class TestRoundTrip:
    def test_put_load_round_trip(self, store):
        store.put(KEY, b"verdict-wire")
        assert store.load(KEY) == b"verdict-wire"
        assert KEY in store
        assert len(store) == 1

    def test_absent_key_is_a_plain_miss(self, store):
        assert store.load(KEY) is None
        assert store.get(KEY) is None
        assert store.stats()["misses"] == 2

    def test_string_and_tuple_keys_are_distinct(self, store):
        store.put("solo", b"one")
        store.put(("solo", "extra"), b"two")
        assert store.load("solo") == b"one"
        assert store.load(("solo", "extra")) == b"two"

    def test_non_bytes_payload_is_a_typed_error(self, store):
        with pytest.raises(StoreError):
            store.put(KEY, "not-bytes")

    def test_survives_reopen(self, store):
        store.put(KEY, b"durable")
        again = VerdictStore(store.root, fsync=False)
        assert again.load(KEY) == b"durable"
        assert again.stats()["recovered"] == 1

    def test_stats_schema_matches_zero_store(self, store):
        assert set(store.stats()) == set(ZERO_STORE)
        assert store.stats()["attached"] is True


# --------------------------------------------------------------- torn write


class TestTornWrite:
    @pytest.mark.parametrize("keep", [0, 1, _BLOB_HEADER.size - 1,
                                      _BLOB_HEADER.size + 3])
    def test_truncated_blob_is_typed_and_discarded(self, store, keep):
        store.put(KEY, b"payload-bytes")
        path = _blob_path(store, KEY)
        path.write_bytes(path.read_bytes()[:keep])
        with pytest.raises(StoreError):
            store.load(KEY)
        assert not path.exists(), "corrupt blob must be discarded"
        # degraded layer: a miss, never a false hit
        assert store.get(KEY) is None

    def test_truncated_tail_only(self, store):
        store.put(KEY, b"payload-bytes")
        path = _blob_path(store, KEY)
        blob = path.read_bytes()
        path.write_bytes(blob[:-1])
        with pytest.raises(StoreError):
            store.load(KEY)
        assert store.get(KEY) is None

    def test_interrupted_publish_leaves_no_blob(self, store, tmp_path):
        """A temp file that never reached its atomic rename is swept by
        recovery and is invisible to readers meanwhile."""
        path = _blob_path(store, KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.stem}.999.1.tmp"
        tmp.write_bytes(b"half-a-blo")
        assert store.load(KEY) is None  # reader: clean miss
        swept = store.recover()
        assert swept["discarded"] == 1
        assert not tmp.exists()


# ----------------------------------------------------------- digest mismatch


class TestDigestMismatch:
    def test_bitflip_anywhere_is_typed_and_discarded(self, store):
        store.put(KEY, b"payload-bytes")
        path = _blob_path(store, KEY)
        blob = bytearray(path.read_bytes())
        for offset in (0, 5, _BLOB_HEADER.size + 2, len(blob) - 1):
            blob2 = bytearray(blob)
            blob2[offset] ^= 0x40
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(bytes(blob2))
            with pytest.raises(StoreError):
                store.load(KEY)
            assert not path.exists()

    def test_blob_filed_under_wrong_key_is_refused(self, store):
        """A valid blob renamed onto another key's digest path (misfiled
        or deliberately swapped) must not serve that other key."""
        store.put(KEY, b"the-real-verdict")
        src = _blob_path(store, KEY)
        dst = _blob_path(store, OTHER)
        dst.parent.mkdir(parents=True, exist_ok=True)
        src.rename(dst)
        with pytest.raises(StoreError):
            store.load(OTHER)
        assert store.get(OTHER) is None
        assert not dst.exists()

    def test_recovery_discards_misfiled_blob(self, store):
        store.put(KEY, b"the-real-verdict")
        src = _blob_path(store, KEY)
        dst = src.with_name("f" * 64 + ".blob")
        src.rename(dst)
        swept = store.recover()
        assert swept == {"kept": 0, "discarded": 1}
        assert not dst.exists()

    def test_recovery_keeps_only_valid_blobs(self, store):
        store.put(KEY, b"good")
        store.put(OTHER, b"also-good")
        bad = _blob_path(store, ("e" * 64, "f" * 64))
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_bytes(b"EGVS-but-not-really")
        swept = store.recover()
        assert swept == {"kept": 2, "discarded": 1}
        assert store.load(KEY) == b"good"
        assert store.load(OTHER) == b"also-good"


# ---------------------------------------------------------- duplicate publish


class TestDuplicatePublish:
    def test_republish_replaces_atomically(self, store):
        store.put(KEY, b"first")
        store.put(KEY, b"second")
        assert store.load(KEY) == b"second"
        assert len(store) == 1  # replacement, not accumulation
        assert store.stats()["puts"] == 2

    def test_concurrent_duplicate_publishers_never_tear(self, store):
        """Many threads republishing the same key: every read observes
        one of the complete published payloads, never a mixture."""
        payloads = [bytes([i]) * 64 for i in range(8)]
        stop = threading.Event()
        errors: list[BaseException] = []

        def publisher(payload: bytes) -> None:
            try:
                while not stop.is_set():
                    store.put(KEY, payload)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=publisher, args=(p,)) for p in payloads
        ]
        for t in threads:
            t.start()
        seen = set()
        try:
            for _ in range(200):
                wire = store.get(KEY)
                if wire is not None:
                    seen.add(wire)
        finally:
            stop.set()
            for t in threads:
                t.join(30.0)
        assert not errors
        assert seen, "readers should have observed published payloads"
        assert seen <= set(payloads), "reader observed a torn payload"


# ------------------------------------------------ reader racing a compaction


class TestCompaction:
    def test_compact_prunes_to_limit(self, store):
        for i in range(10):
            store.put((f"{i:064d}", "k"), b"wire-%d" % i)
        removed = store.compact(max_blobs=4)
        assert removed == 6
        assert store.stats()["compacted"] == 6
        kept = sum(
            1 for i in range(10) if store.get((f"{i:064d}", "k")) is not None
        )
        assert kept == 4

    def test_concurrent_reader_during_compaction(self, store):
        """A reader racing repeated compactions sees, for every key,
        either the complete blob or a clean miss — never a typed error
        from a half-removed file, never wrong bytes."""
        keys = [(f"{i:064d}", "x") for i in range(24)]
        for i, key in enumerate(keys):
            store.put(key, b"payload-%03d" % i)
        stop = threading.Event()
        problems: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                for i, key in enumerate(keys):
                    try:
                        wire = store.load(key)
                    except StoreError as exc:
                        problems.append(f"typed error during compaction: {exc}")
                        return
                    if wire is not None and wire != b"payload-%03d" % i:
                        problems.append(f"wrong bytes for key {i}")
                        return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for limit in (20, 12, 6, 2, 0):
                store.compact(max_blobs=limit)
                # republish everything so the next round has work
                for i, key in enumerate(keys):
                    store.put(key, b"payload-%03d" % i)
        finally:
            stop.set()
            for t in threads:
                t.join(30.0)
        assert not problems, problems

    def test_capacity_bound_via_constructor(self, tmp_path):
        store = VerdictStore(tmp_path / "cap", fsync=False, capacity=3)
        for i in range(8):
            store.put((f"{i:064d}", "k"), b"w")
        assert store.compact() == 5
        assert len(store) == 3


# ------------------------------------------------------- hypothesis sweeps


class TestProperties:
    @given(payload=st.binary(min_size=0, max_size=512),
           parts=st.lists(st.text(
               alphabet=st.characters(min_codepoint=33, max_codepoint=126),
               min_size=1, max_size=32,
           ), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_key_any_payload(self, tmp_path_factory,
                                            payload, parts):
        store = VerdictStore(
            tmp_path_factory.mktemp("prop"), fsync=False
        )
        key = tuple(parts)
        store.put(key, payload)
        assert store.load(key) == payload

    @given(payload=st.binary(min_size=1, max_size=256),
           cut=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_any_truncation_is_typed_never_a_hit(self, tmp_path_factory,
                                                 payload, cut):
        store = VerdictStore(
            tmp_path_factory.mktemp("trunc"), fsync=False
        )
        store.put(KEY, payload)
        path = _blob_path(store, KEY)
        blob = path.read_bytes()
        cut = cut % len(blob)  # strictly shorter than the real blob
        path.write_bytes(blob[:cut])
        with pytest.raises(StoreError):
            store.load(KEY)
        assert store.get(KEY) is None


# ------------------------------------------------------------- tiered cache


@pytest.fixture(scope="module")
def small_corpus(libc):
    return generate_variant_corpus(6, libc=libc)


@pytest.fixture(scope="module")
def inspected(small_corpus, all_policies):
    from repro.core import EnGarde

    engarde = EnGarde(all_policies)
    out = []
    for label, raw in small_corpus:
        outcome = engarde.inspect(raw, benchmark=label)
        out.append((label, raw, outcome.report))
    return out


class TestTieredCache:
    def test_put_writes_through_and_survives_restart(
        self, tmp_path, all_policies, inspected
    ):
        store = VerdictStore(tmp_path / "tier", fsync=False)
        cache = TieredCache(store, capacity=16)
        for label, raw, report in inspected:
            cache.put(cache_key(raw, all_policies), report)
        assert store.stats()["puts"] == len(inspected)

        # a brand-new process: fresh memory tier, same directory
        cache2 = TieredCache(VerdictStore(tmp_path / "tier", fsync=False), 16)
        for label, raw, report in inspected:
            got = cache2.get(cache_key(raw, all_policies), benchmark=label)
            assert got is not None, f"{label}: store-warm get missed"
            assert got.serialize() == report.serialize()

    def test_store_hit_is_promoted_to_memory(
        self, tmp_path, all_policies, inspected
    ):
        store = VerdictStore(tmp_path / "tier", fsync=False)
        seed = TieredCache(store, capacity=16)
        label, raw, report = inspected[0]
        key = cache_key(raw, all_policies)
        seed.put(key, report)

        cache = TieredCache(store, capacity=16)
        assert cache.get(key, benchmark=label) is not None
        before = store.stats()["hits"]
        assert cache.get(key, benchmark=label) is not None
        assert store.stats()["hits"] == before, "second get must hit memory"

    def test_corrupt_blob_degrades_to_miss_not_false_hit(
        self, tmp_path, all_policies, inspected
    ):
        store = VerdictStore(tmp_path / "tier", fsync=False)
        seed = TieredCache(store, capacity=16)
        label, raw, report = inspected[0]
        key = cache_key(raw, all_policies)
        seed.put(key, report)
        path = store._path_for(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        cache = TieredCache(store, capacity=16)
        assert cache.get(key, benchmark=label) is None
        assert not path.exists(), "corrupt blob must be discarded"
        assert store.stats()["corrupt_discarded"] == 1

    def test_forged_round_trip_blob_is_refused(
        self, tmp_path, all_policies, inspected
    ):
        """A blob whose envelope digest is valid but whose payload does
        not round-trip through ComplianceReport is refused."""
        store = VerdictStore(tmp_path / "tier", fsync=False)
        label, raw, _ = inspected[0]
        key = cache_key(raw, all_policies)
        store.put(key, b"not-a-report-wire")
        cache = TieredCache(store, capacity=16)
        assert cache.get(key, benchmark=label) is None
        assert store._path_for(key).exists() is False

    def test_is_a_drop_in_inspection_cache(self, tmp_path):
        store = VerdictStore(tmp_path / "tier", fsync=False)
        cache = TieredCache(store, capacity=4)
        assert isinstance(cache, InspectionCache)
        tiers = cache.tier_stats()
        assert set(tiers) == {"memory", "store"}
        assert set(tiers["store"]) == set(ZERO_STORE)
