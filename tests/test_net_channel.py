"""Simulated sockets and the authenticated provisioning channel."""

from __future__ import annotations

import pytest

from repro.crypto import HmacDrbg, generate_keypair
from repro.crypto.channel import SecureChannel, ServerHandshake, client_handshake
from repro.errors import CryptoError, NetError, ProtocolError
from repro.net import SimSocket, SocketPair


class TestSimSocket:
    def test_send_recv(self):
        pair = SocketPair()
        pair.left.send(b"hello")
        assert pair.right.recv() == b"hello"

    def test_fifo_order(self):
        pair = SocketPair()
        for i in range(5):
            pair.left.send(bytes([i]))
        assert [pair.right.recv() for _ in range(5)] == [bytes([i]) for i in range(5)]

    def test_duplex(self):
        pair = SocketPair()
        pair.left.send(b"ping")
        pair.right.send(b"pong")
        assert pair.right.recv() == b"ping"
        assert pair.left.recv() == b"pong"

    def test_recv_empty_raises(self):
        pair = SocketPair()
        with pytest.raises(NetError):
            pair.left.recv()

    def test_closed_socket(self):
        pair = SocketPair()
        pair.left.close()
        with pytest.raises(NetError):
            pair.left.send(b"x")
        with pytest.raises(NetError):
            pair.right.send(b"x")  # peer closed

    def test_byte_accounting(self):
        pair = SocketPair()
        pair.left.send(b"12345")
        pair.right.recv()
        assert pair.left.bytes_sent == 4 + 5  # length prefix + body
        assert pair.right.bytes_received == 9

    def test_pending(self):
        pair = SocketPair()
        assert pair.right.pending() == 0
        pair.left.send(b"a")
        pair.left.send(b"b")
        assert pair.right.pending() == 2

    def test_oversized_frame(self):
        pair = SocketPair()
        with pytest.raises(NetError):
            pair.left.send(b"x" * (64 * 1024 * 1024 + 1))


def _handshake(rsa_bits=512, fingerprint_check=True):
    pair = SocketPair()
    hs = ServerHandshake(pair.right, HmacDrbg(b"srv"), rsa_bits=rsa_bits)
    keypair = hs.send_public_key()
    expected = keypair.public_key.fingerprint() if fingerprint_check else None
    cli, _pub = client_handshake(
        pair.left, HmacDrbg(b"cli"), expected_fingerprint=expected
    )
    srv = hs.complete()
    return cli, srv, pair


class TestHandshake:
    def test_establishes_channel(self):
        cli, srv, _ = _handshake()
        cli.send(b"content block")
        assert srv.recv() == b"content block"
        srv.send(b"verdict")
        assert cli.recv() == b"verdict"

    def test_complete_before_send_rejected(self):
        pair = SocketPair()
        hs = ServerHandshake(pair.right, HmacDrbg(b"s"), rsa_bits=512)
        with pytest.raises(ProtocolError):
            hs.complete()

    def test_double_send_rejected(self):
        pair = SocketPair()
        hs = ServerHandshake(pair.right, HmacDrbg(b"s"), rsa_bits=512)
        hs.send_public_key()
        with pytest.raises(ProtocolError):
            hs.send_public_key()

    def test_fingerprint_mismatch_detected(self):
        # A man-in-the-middle provider substituting its own key is caught
        # because the client pins the fingerprint from the attestation quote.
        pair = SocketPair()
        hs = ServerHandshake(pair.right, HmacDrbg(b"srv"), rsa_bits=512)
        hs.send_public_key()
        other = generate_keypair(512, HmacDrbg(b"mitm"))
        with pytest.raises(ProtocolError):
            client_handshake(
                pair.left, HmacDrbg(b"cli"),
                expected_fingerprint=other.public_key.fingerprint(),
            )

    def test_preprovided_keypair(self):
        keypair = generate_keypair(512, HmacDrbg(b"pre"))
        pair = SocketPair()
        hs = ServerHandshake(pair.right, HmacDrbg(b"srv"), keypair=keypair)
        assert hs.send_public_key() is keypair


class TestSecureChannel:
    def test_record_roundtrip_various_sizes(self):
        cli, srv, _ = _handshake()
        for size in (0, 1, 15, 16, 17, 4096, 70000):
            cli.send(b"q" * size)
            assert srv.recv() == b"q" * size

    def test_tampered_record_rejected(self):
        cli, srv, pair = _handshake()
        cli.send(b"sensitive")
        frame = bytearray(pair.right._inbox[0])
        frame[len(frame) // 2] ^= 0x01
        pair.right._inbox[0] = bytes(frame)
        with pytest.raises((CryptoError, NetError)):
            srv.recv()

    def test_replay_rejected(self):
        cli, srv, pair = _handshake()
        cli.send(b"block")
        raw = pair.right._inbox[0]
        srv.recv()
        pair.right._inbox.append(raw)  # replay the same record
        with pytest.raises(CryptoError):
            srv.recv()

    def test_reflection_rejected(self):
        # A record sent client->server cannot be decrypted as server->client.
        cli, srv, pair = _handshake()
        cli.send(b"block")
        frame = pair.right._inbox.popleft()
        pair.left._inbox.append(frame)
        with pytest.raises(CryptoError):
            cli.recv()

    def test_ciphertext_hides_plaintext(self):
        cli, srv, pair = _handshake()
        secret = b"SECRET-CLIENT-CODE" * 10
        cli.send(secret)
        wire = bytes(pair.right._inbox[0])
        assert secret not in wire
        assert srv.recv() == secret

    def test_wrong_session_key_fails(self):
        cli, _, _ = _handshake()
        other_srv_sock = SocketPair()
        bad = SecureChannel(other_srv_sock.left, b"\x00" * 32, is_server=True)
        cli.send(b"data")
        # ciphertexts produced under different keys are not interchangeable
        with pytest.raises((CryptoError, NetError)):
            bad.recv()
