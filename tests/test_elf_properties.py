"""Property tests over the ELF layout and writer/reader pair."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elf import ElfSymbol, Layout, read_elf, write_elf
from repro.elf.constants import PAGE_SIZE, TEXT_VADDR
from repro.x86 import Assembler, RAX


@given(
    text_size=st.integers(1, 200_000),
    n_relocs=st.integers(0, 500),
    data_size=st.integers(0, 50_000),
    bss_size=st.integers(0, 1 << 20),
)
@settings(max_examples=200, deadline=None)
def test_layout_invariants(text_size, n_relocs, data_size, bss_size):
    layout = Layout.compute(text_size, n_relocs, data_size, bss_size)
    # fixed conventions
    assert layout.text_vaddr == TEXT_VADDR
    assert layout.rela_vaddr % PAGE_SIZE == 0
    # no overlaps, correct ordering
    assert layout.rela_vaddr >= layout.text_vaddr + text_size
    assert layout.dynamic_vaddr == layout.rela_vaddr + layout.rela_size
    assert layout.data_vaddr >= layout.dynamic_vaddr + layout.dynamic_size
    assert layout.bss_vaddr >= layout.data_vaddr + layout.data_size
    # segment extents cover their members
    assert layout.data_segment_filesz >= layout.rela_size + layout.dynamic_size
    assert (layout.data_segment_memsz
            >= layout.data_segment_filesz + bss_size - data_size)


@given(
    data=st.binary(min_size=0, max_size=2_000),
    bss=st.integers(0, 100_000),
    n_relocs=st.integers(0, 40),
)
@settings(max_examples=50, deadline=None)
def test_write_read_roundtrip_random_shapes(data, bss, n_relocs):
    asm = Assembler()
    asm.mov_imm(1, RAX)
    asm.ret()
    text = asm.finish()
    layout = Layout.compute(len(text), n_relocs, len(data), bss)
    relocations = [
        (layout.data_vaddr + 8 * i, layout.text_vaddr)
        for i in range(n_relocs)
        if 8 * i + 8 <= max(len(data), 8 * n_relocs)
    ]
    # slots may exceed the initialised data area; extend data to cover them
    needed = max(len(data), 8 * n_relocs)
    blob = write_elf(
        text=text,
        data=data.ljust(needed, b"\x00"),
        bss_size=bss,
        symbols=[ElfSymbol("_start", layout.text_vaddr, len(text))],
        relocations=relocations,
        entry_vaddr=layout.text_vaddr,
        layout=Layout.compute(len(text), n_relocs, needed, bss),
    )
    img = read_elf(blob)
    assert img.text_sections[0].data == text
    assert len(img.relocations) == len(relocations)
    assert img.section(".bss").size == bss
    assert img.section(".data").size == needed
    # vaddr/offset congruence for every loadable segment
    for seg in img.load_segments:
        assert seg.p_vaddr % PAGE_SIZE == seg.p_offset % PAGE_SIZE


@given(st.lists(
    st.tuples(
        st.text(alphabet="abcdefgh_", min_size=1, max_size=12),
        st.sampled_from(["func", "object"]),
        st.sampled_from(["global", "local"]),
    ),
    max_size=20,
))
@settings(max_examples=50, deadline=None)
def test_symbol_table_roundtrip(entries):
    asm = Assembler()
    asm.mov_imm(1, RAX)
    asm.ret()
    text = asm.finish()
    layout = Layout.compute(len(text), 0, 8, 8)
    # de-duplicate names (the writer's string table merges equal names but
    # symbols themselves may repeat; keep the test's expectations simple)
    seen = set()
    symbols = [ElfSymbol("_start", layout.text_vaddr, len(text))]
    for name, kind, binding in entries:
        if name in seen or name == "_start":
            continue
        seen.add(name)
        section = "text" if kind == "func" else "data"
        vaddr = layout.text_vaddr if kind == "func" else layout.data_vaddr
        symbols.append(ElfSymbol(name, vaddr, 4, kind, section, binding))
    blob = write_elf(
        text=text, data=b"\x00" * 8, bss_size=8, symbols=symbols,
        relocations=[], entry_vaddr=layout.text_vaddr, layout=layout,
    )
    img = read_elf(blob)
    assert {s.name for s in img.symbols} == {s.name for s in symbols}
    # locals precede globals in the emitted table (ABI requirement)
    bindings = [s.binding for s in img.symbols]
    if 0 in bindings and 1 in bindings:
        assert bindings.index(1) > len([b for b in bindings if b == 0]) - 1
