"""The cycle meter and cost model."""

from __future__ import annotations

import pytest

from repro.sgx import CostModel, CycleMeter


class TestCostModel:
    def test_defaults_include_paper_constant(self):
        assert CostModel().sgx_instruction == 10_000  # the OpenSGX model

    def test_replace_creates_variant(self):
        base = CostModel()
        variant = base.replace(sgx_instruction=1)
        assert variant.sgx_instruction == 1
        assert variant.decode_insn == base.decode_insn
        assert base.sgx_instruction == 10_000  # original untouched

    def test_replace_unknown_field(self):
        with pytest.raises(TypeError):
            CostModel().replace(warp_drive=9)


class TestCycleMeter:
    def test_charge_accumulates(self):
        meter = CycleMeter()
        meter.charge("decode_insn", 10)
        meter.charge("decode_byte", 100)
        expected = 10 * meter.cost.decode_insn + 100 * meter.cost.decode_byte
        assert meter.total_cycles == expected
        assert meter.total.events == {"decode_insn": 10, "decode_byte": 100}

    def test_unknown_event(self):
        with pytest.raises(KeyError):
            CycleMeter().charge("nonexistent_event")

    def test_charge_returns_cycles(self):
        meter = CycleMeter()
        assert meter.charge("sgx_instruction", 3) == 30_000

    def test_phase_attribution(self):
        meter = CycleMeter()
        with meter.phase("disassembly"):
            meter.charge("decode_insn", 5)
        with meter.phase("policy"):
            meter.charge("policy_scan_insn", 7)
        meter.charge("reloc_apply")  # outside any phase
        assert meter.phase_cycles("disassembly") == 5 * meter.cost.decode_insn
        assert meter.phase_cycles("policy") == 7 * meter.cost.policy_scan_insn
        assert meter.phase_cycles("unknown") == 0
        total_phases = (meter.phase_cycles("disassembly")
                        + meter.phase_cycles("policy"))
        assert meter.total_cycles == total_phases + meter.cost.reloc_apply

    def test_nested_phases_attribute_to_innermost(self):
        meter = CycleMeter()
        with meter.phase("outer"):
            meter.charge("decode_insn")
            with meter.phase("inner"):
                meter.charge("decode_insn")
        assert meter.phases["outer"].events["decode_insn"] == 1
        assert meter.phases["inner"].events["decode_insn"] == 1

    def test_sgx_instruction_counter(self):
        meter = CycleMeter()
        meter.charge_sgx(4)
        meter.charge("decode_insn")
        assert meter.sgx_instruction_count == 4

    def test_reset(self):
        meter = CycleMeter()
        with meter.phase("p"):
            meter.charge_sgx()
        meter.reset()
        assert meter.total_cycles == 0
        assert meter.phases == {}

    def test_report_shape(self):
        meter = CycleMeter()
        with meter.phase("loading"):
            meter.charge("reloc_apply", 3)
        report = meter.report()
        assert report["loading"]["cycles"] == 3 * meter.cost.reloc_apply
        assert report["loading"]["reloc_apply"] == 3

    def test_custom_model_flows_through(self):
        meter = CycleMeter(CostModel().replace(decode_insn=1))
        meter.charge("decode_insn", 42)
        assert meter.total_cycles == 42
