"""Stripped-binary function recognition (the section-6 extension)."""

from __future__ import annotations

import pytest

from repro.core import (
    Disassembler,
    PolicyRegistry,
    StackProtectionPolicy,
    recognize_functions,
)
from repro.elf import ElfSymbol, Layout, read_elf, write_elf
from repro.errors import RejectionError
from repro.sgx import CycleMeter
from repro.x86 import decode_all
from tests.conftest import compile_demo


def strip_binary(binary) -> bytes:
    """Re-emit the ELF with an empty symbol table (a stripped binary)."""
    img = read_elf(binary.elf)
    text = img.text_sections[0]
    data = img.section(".data")
    bss = img.section(".bss")
    layout = Layout.compute(
        len(text.data), len(img.relocations), len(data.data), bss.size
    )
    return write_elf(
        text=text.data,
        data=data.data,
        bss_size=bss.size,
        symbols=[],
        relocations=[(r.r_offset, r.r_addend) for r in img.relocations],
        entry_vaddr=img.entry,
        layout=layout,
    )


@pytest.fixture(scope="module")
def demo_sp(libc):
    return compile_demo(libc, stack_protector=True, name="funcid")


@pytest.fixture(scope="module")
def demo_sp_ifcc(libc):
    return compile_demo(libc, stack_protector=True, ifcc=True, name="funcid2")


class TestRecognizer:
    def _truth_and_recognized(self, binary):
        img = read_elf(binary.elf)
        text = img.text_sections[0]
        insns = decode_all(text.data)
        truth = {s.value - text.vaddr for s in img.function_symbols()}
        recognized = recognize_functions(
            insns, entry=img.entry - text.vaddr
        )
        return truth, set(recognized.starts), recognized

    def test_perfect_precision(self, demo_sp):
        truth, found, _ = self._truth_and_recognized(demo_sp)
        assert found <= truth, f"false positives: {sorted(found - truth)}"

    def test_high_recall(self, demo_sp):
        truth, found, _ = self._truth_and_recognized(demo_sp)
        recall = len(found & truth) / len(truth)
        assert recall >= 0.9, f"recall {recall:.2f}"

    def test_jump_table_entries_found(self, demo_sp_ifcc):
        truth, found, recognized = self._truth_and_recognized(demo_sp_ifcc)
        assert recognized.by_evidence["jump-table"] > 0
        assert found <= truth

    def test_evidence_breakdown(self, demo_sp):
        _, _, recognized = self._truth_and_recognized(demo_sp)
        assert recognized.by_evidence["call-target"] > 0
        assert recognized.by_evidence["entry"] == 1

    def test_synthetic_names(self, demo_sp):
        _, _, recognized = self._truth_and_recognized(demo_sp)
        names = recognized.synthetic_names()
        assert all(name.startswith("fn_0x") for name in names.values())
        assert len(names) == len(recognized.starts)


class TestStrippedPipeline:
    def test_default_rejects_stripped(self, demo_sp):
        stripped = strip_binary(demo_sp)
        with pytest.raises(RejectionError, match="stripped"):
            Disassembler(CycleMeter()).run(stripped)

    def test_extension_accepts_stripped(self, demo_sp):
        stripped = strip_binary(demo_sp)
        result = Disassembler(CycleMeter(), allow_stripped=True).run(stripped)
        assert len(result.symtab) > 0
        assert result.instructions

    def test_structural_policy_works_on_stripped(self, libc, demo_sp):
        """Stack-protection is name-free (structural), so it still works
        against recognised functions — exactly the enhancement the paper
        sketches."""
        stripped = strip_binary(demo_sp)
        meter = CycleMeter()
        result = Disassembler(meter, allow_stripped=True).run(stripped)
        ctx = result.policy_context(meter)
        policy = StackProtectionPolicy()  # no libc names to exempt
        verdict = policy.check(ctx)
        # instrumented functions are recognised and verified; libc
        # functions have no rsp-canary pattern but also no exemption -> we
        # only require that the recognised *client* functions pass, which
        # shows up as: at least one function checked, and the three
        # instrumented ones are not among the violations
        assert verdict.stats["functions_checked"] > 0

    def test_stripped_plain_binary_fails_structural_policy(self, libc, demo_plain):
        stripped = strip_binary(demo_plain)
        meter = CycleMeter()
        result = Disassembler(meter, allow_stripped=True).run(stripped)
        ctx = result.policy_context(meter)
        verdict = StackProtectionPolicy().check(ctx)
        assert not verdict.compliant
