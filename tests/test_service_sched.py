"""Adaptive scheduler: plan selection, knobs, and wire-exact dispatch.

The contract: ``scheduler="adaptive"`` may change *how* verdicts are
produced (inline / micro-batch / extent-split) but never *what* they
are — every report wire and terminal error class matches the frozen
``scheduler="per-item"`` oracle, and all dispatch activity surfaces in
the always-present ``BatchSummary.dispatch`` block (``ZERO_SCHED``
schema, pinned here like ``ZERO_RESILIENCE`` / ``ZERO_SHARD``).
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FakeClock, FaultPlan, FaultSpec, injected
from repro.service import BatchInspector
from repro.service.corpus import generate_variant_corpus
from repro.service.sched import (
    DEFAULT_MICROBATCH_BYTES,
    DEFAULT_SPLIT_BYTES,
    ZERO_SCHED,
    AdaptiveScheduler,
)

from tests.conftest import compile_demo


@pytest.fixture(scope="module")
def good_elf(libc):
    return compile_demo(libc, stack_protector=True, ifcc=True, name="sched").elf


@pytest.fixture(scope="module")
def big_elf(libc):
    """A binary large enough to clear the extent planner's 4KiB-per-
    extent floor, so the split lane actually dispatches scan tasks."""
    from repro.toolchain.workloads import build_workload

    return build_workload(
        "bzip2", scale=1.0, libc=libc, stack_protector=True, ifcc=True
    ).elf


@pytest.fixture(scope="module")
def small_corpus(libc):
    return generate_variant_corpus(12, libc=libc)


def _wires(report):
    return [
        (r.label, r.report.serialize() if r.report else None, r.error)
        for r in report.results
    ]


# -------------------------------------------------------- plan selection


def test_single_worker_inlines_everything():
    sched = AdaptiveScheduler(workers=1)
    plan = sched.plan([("a", 100), ("b", 50_000), ("c", 200_000)])
    # dispatching can never pay for itself with nobody to parallelize to
    assert plan.inline == ["a", "b", "c"]
    assert not plan.groups and not plan.split


def test_huge_binaries_route_to_extent_split():
    sched = AdaptiveScheduler(workers=4)
    plan = sched.plan([("big", DEFAULT_SPLIT_BYTES), ("small", 8_192)])
    assert plan.split == ["big"]
    assert "big" not in [k for g in plan.groups for k in g]


def test_micro_batches_target_payload_bytes():
    sched = AdaptiveScheduler(workers=4)
    item_bytes = DEFAULT_MICROBATCH_BYTES // 4
    sized = [(f"k{i}", item_bytes) for i in range(12)]
    plan = sched.plan(sized)
    assert not plan.split
    # groups pack to >= the target (except possibly the last)
    assert all(len(g) == 4 for g in plan.groups[:-1])
    assert [k for g in plan.groups for k in g] + plan.inline == [
        k for k, _ in sized
    ]


def test_cost_feedback_moves_the_break_even():
    sched = AdaptiveScheduler(workers=4)
    before = sched.break_even_seconds
    sched.observe_dispatch(overhead=10 * before, queue_wait=0.001)
    assert sched.break_even_seconds > before
    # and a very cheap measured cost makes small items inline-eligible
    for _ in range(50):
        sched.observe_work(1_000_000, 1e-6)
    assert sched.should_inline(10_000)


# ------------------------------------------------------------ env knobs


def test_env_knobs_validated_like_repro_workers(monkeypatch, all_policies):
    monkeypatch.setenv("REPRO_SCHED_MICROBATCH_BYTES", "not-a-number")
    with pytest.raises(ValueError, match="REPRO_SCHED_MICROBATCH_BYTES"):
        BatchInspector(all_policies, mode="process", scheduler="adaptive")
    monkeypatch.setenv("REPRO_SCHED_MICROBATCH_BYTES", "0")
    with pytest.raises(ValueError, match=">= 1"):
        BatchInspector(all_policies, mode="process", scheduler="adaptive")
    monkeypatch.setenv("REPRO_SCHED_MICROBATCH_BYTES", "65536")
    monkeypatch.setenv("REPRO_SCHED_SPLIT_BYTES", "262144")
    monkeypatch.setenv("REPRO_SCHED_BREAKEVEN_US", "250")
    inspector = BatchInspector(
        all_policies, mode="process", scheduler="adaptive"
    )
    assert inspector._sched.microbatch_bytes == 65536
    assert inspector._sched.split_bytes == 262144
    assert inspector._sched.break_even_seconds == pytest.approx(250e-6)
    inspector.close()


def test_unknown_scheduler_rejected(all_policies):
    with pytest.raises(ValueError, match="scheduler"):
        BatchInspector(all_policies, scheduler="psychic")


# ------------------------------------------------- differential battery


@pytest.mark.parametrize("mode,shm", [
    ("process", True), ("process", False), ("thread", True),
])
def test_adaptive_matches_per_item_oracle(
    all_policies, small_corpus, mode, shm
):
    """Full variant corpus, both schedulers, every executor flavour:
    report wires are byte-identical and error labels agree."""
    with BatchInspector(
        all_policies, mode=mode, workers=2, shared_memory=shm, cache=False,
    ) as per_item:
        expected = _wires(per_item.inspect_batch(small_corpus))
    with BatchInspector(
        all_policies, mode=mode, workers=2, shared_memory=shm, cache=False,
        scheduler="adaptive",
    ) as adaptive:
        report = adaptive.inspect_batch(small_corpus)
    assert _wires(report) == expected
    d = report.summary.dispatch
    assert d["scheduler"] == "adaptive"
    assert d["inlined"] + d["micro_batched"] + d["extent_split"] > 0


def test_adaptive_split_lane_matches_oracle(
    monkeypatch, all_policies, big_elf
):
    """Force the extent-split lane (tiny split threshold) and hold the
    verdict wire identical to the per-item oracle."""
    with BatchInspector(
        all_policies, mode="process", workers=2, cache=False,
    ) as per_item:
        expected = _wires(per_item.inspect_batch([("x", big_elf)]))
    monkeypatch.setenv("REPRO_SCHED_SPLIT_BYTES", str(len(big_elf)))
    with BatchInspector(
        all_policies, mode="process", workers=2, cache=False,
        scheduler="adaptive",
    ) as adaptive:
        report = adaptive.inspect_batch([("x", big_elf)])
    assert _wires(report) == expected
    d = report.summary.dispatch
    assert d["extent_split"] == 1
    assert d["extents_scanned"] >= 2


# --------------------------------------------------- timeouts / zombies


def test_timed_out_micro_batch_zombies_every_ticket(all_policies, libc):
    """A hung micro-batch worker may still be attached to *every* slot
    in its group: all tickets park on the zombie list (bytes stay in
    use), and close() reclaims them safely."""
    corpus = [
        (f"t{i}", compile_demo(libc, stack_protector=True, name=f"zb{i}").elf)
        for i in range(3)
    ]
    inspector = BatchInspector(
        all_policies, mode="process", workers=2, cache=False,
        scheduler="adaptive", timeout=1e-6,
    )
    report = inspector.inspect_batch(corpus)
    for item in report.results:
        assert item.report is None
        assert "timeout" in (item.error or "")
    stats = inspector.arena_stats()
    assert stats is not None and stats["bytes_in_use"] > 0
    inspector.close()
    assert inspector.arena_stats() is None

    # the inspector recovers once the rush is off
    inspector.timeout = None
    again = inspector.inspect_batch(corpus)
    assert all(r.report is not None for r in again.results)
    inspector.close()


# ----------------------------------------------------- fault-plan drills


def test_extent_worker_fault_fails_the_verdict_closed(
    monkeypatch, all_policies, big_elf
):
    """Seeded drill: a crash while scanning ONE extent of a split binary
    must fail the whole verdict with a typed error — never a partial or
    silently-recomputed verdict.  Reuses the existing
    ``service.batch.worker`` hook; no new fault points."""
    monkeypatch.setenv("REPRO_SCHED_SPLIT_BYTES", str(len(big_elf)))
    clock = FakeClock()
    plan = FaultPlan(
        [FaultSpec(hook="service.batch.worker", kind="raise",
                   after=1, max_triggers=1)],
        clock=clock,
    )
    inspector = BatchInspector(
        all_policies, mode="thread", workers=2, cache=False,
        scheduler="adaptive", clock=clock,
    )
    with injected(plan):
        report = inspector.inspect_batch([("x", big_elf)])
    inspector.close()
    item = report.results[0]
    assert item.report is None
    assert item.error is not None
    assert item.error.startswith("WorkerCrashError:")
    assert report.summary.errors == 1
    assert report.summary.dispatch["futures_submitted"] >= 2


def test_group_crash_reruns_members_per_item(all_policies, libc):
    """A whole-group worker crash re-runs its members through the frozen
    per-item path — one transient fault costs an extra round-trip, not
    a batch of errors."""
    corpus = [
        (f"g{i}", compile_demo(libc, stack_protector=True, name=f"gc{i}").elf)
        for i in range(3)
    ]
    clock = FakeClock()
    plan = FaultPlan(
        [FaultSpec(hook="service.batch.worker", kind="raise",
                   after=0, max_triggers=1)],
        clock=clock,
    )
    inspector = BatchInspector(
        all_policies, mode="thread", workers=2, cache=False,
        scheduler="adaptive", clock=clock,
    )
    with injected(plan):
        report = inspector.inspect_batch(corpus)
    inspector.close()
    assert all(r.report is not None for r in report.results)
    assert report.summary.errors == 0


def test_inline_lane_honors_retries(all_policies, good_elf):
    """The inline lane goes through the same retry/backoff machinery as
    the serial driver — a transient crash recovers on retry with the
    exact backoff schedule."""
    clock = FakeClock()
    plan = FaultPlan(
        [FaultSpec(hook="service.batch.worker", kind="raise",
                   after=0, max_triggers=1)],
        clock=clock,
    )
    inspector = BatchInspector(
        all_policies, mode="process", workers=1, cache=False,
        scheduler="adaptive", retries=1, backoff_base=0.05, clock=clock,
    )
    with injected(plan):
        report = inspector.inspect_batch([("a", good_elf)])
    inspector.close()
    item = report.results[0]
    assert item.report is not None
    assert report.summary.dispatch["inlined"] == 1
    assert report.summary.resilience["retry_attempts"] == 1
    assert clock.sleeps == [0.05]


# --------------------------------------------------------- schema pins


def test_dispatch_schema_is_stable(all_policies, good_elf):
    """``summary.dispatch`` is ALWAYS present with the full ZERO_SCHED
    key set — zeroed on the per-item/serial paths, live under adaptive —
    so STATUS/METRICS consumers never branch on key presence."""
    serial = BatchInspector(all_policies, mode="serial")
    payload = json.loads(serial.inspect_batch([("a", good_elf)]).to_json())
    assert payload["summary"]["dispatch"] == ZERO_SCHED

    with BatchInspector(
        all_policies, mode="process", workers=2, cache=False,
    ) as per_item:
        block = per_item.inspect_batch([("a", good_elf)]).summary.dispatch
    assert set(block) == set(ZERO_SCHED)
    assert block["scheduler"] == "per-item"
    assert block["futures_submitted"] == 1

    with BatchInspector(
        all_policies, mode="process", workers=2, cache=False,
        scheduler="adaptive",
    ) as adaptive:
        block = adaptive.inspect_batch([("a", good_elf)]).summary.dispatch
    assert set(block) == set(ZERO_SCHED)
    assert block["scheduler"] == "adaptive"

    schema = {
        "scheduler": str,
        "futures_submitted": int, "inlined": int,
        "micro_batched": int, "micro_batches": int,
        "extent_split": int, "extents_scanned": int, "split_fallbacks": int,
        "queue_wait_seconds": (int, float),
        "break_even_seconds": (int, float),
        "pickle_penalty_seconds": (int, float),
    }
    for candidate in (block, ZERO_SCHED):
        assert set(candidate) == set(schema)
        for key, types in schema.items():
            assert isinstance(candidate[key], types), key


def test_daemon_status_and_metrics_grow_sched_block(all_policies):
    from tests.conftest import small_daemon

    daemon = small_daemon(all_policies)
    try:
        assert daemon.status()["sched"] == ZERO_SCHED
        assert daemon.metrics_snapshot()["sched"] == ZERO_SCHED
    finally:
        daemon.stop()

    adaptive = small_daemon(all_policies, scheduler="adaptive")
    try:
        block = adaptive.status()["sched"]
        assert set(block) == set(ZERO_SCHED)
        assert block["scheduler"] == "adaptive"
    finally:
        adaptive.stop()


# ------------------------------------------------- pickle-penalty cliff


def test_pickle_cliff_warns_once_and_reports_penalty(
    monkeypatch, all_policies, good_elf
):
    import repro.service.batch as batch_mod

    monkeypatch.setattr(batch_mod, "PICKLE_WARN_BYTES", 1024)
    inspector = BatchInspector(
        all_policies, mode="process", workers=2, shared_memory=False,
        cache=False,
    )
    with pytest.warns(RuntimeWarning, match="shared_memory"):
        report = inspector.inspect_batch([("a", good_elf)])
    assert report.summary.dispatch["pickle_penalty_seconds"] > 0
    # warn-once: the second batch stays quiet but keeps accounting
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        again = inspector.inspect_batch([("b", good_elf)])
    assert again.summary.dispatch["pickle_penalty_seconds"] > 0
    inspector.close()

    # the zero-copy path never pays it
    with BatchInspector(
        all_policies, mode="process", workers=2, cache=False,
    ) as zero_copy:
        clean = zero_copy.inspect_batch([("a", good_elf)])
    assert clean.summary.dispatch["pickle_penalty_seconds"] == 0.0
