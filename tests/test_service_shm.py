"""The zero-copy shared-memory executor: arena semantics and the
cross-mode differential.

The arena is the trust boundary between the batch front-end and its
pool workers, so the tests here are fail-closed-shaped: a stale,
released, or torn-down slot must raise a typed :class:`ArenaError` —
never hand back bytes that might be someone else's — and every
executor mode must produce byte-identical verdict wire.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ArenaError
from repro.service import (
    BatchInspector,
    SharedArena,
    default_workers,
    generate_variant_corpus,
)
from repro.service import shm as shm_mod
from tests.conftest import compile_demo, daemon_client, small_daemon


@pytest.fixture(scope="module")
def good_elf(libc):
    return compile_demo(libc, stack_protector=True, ifcc=True, name="shm").elf


@pytest.fixture()
def arena():
    a = SharedArena(segment_bytes=1 << 16)
    yield a
    a.close()
    shm_mod.detach_all()


# ----------------------------------------------------------------- arena


def test_publish_attach_roundtrip(arena):
    payload = os.urandom(4096)
    ticket = arena.publish(payload)
    view = shm_mod.attach_view(ticket)
    try:
        assert bytes(view) == payload
        assert len(view) == ticket.length
    finally:
        view.release()
        shm_mod.detach_all()


def test_release_tombstones_the_slot(arena):
    ticket = arena.publish(b"x" * 128)
    arena.release(ticket)
    with pytest.raises(ArenaError):
        shm_mod.attach_view(ticket)
    # releasing again is a no-op, not a crash
    arena.release(ticket)


def test_stale_generation_fails_closed(arena):
    """A reused slot must refuse tickets from its previous life."""
    old = arena.publish(b"a" * 256)
    arena.release(old)
    # same size: the allocator hands back the same offset, new generation
    new = arena.publish(b"b" * 256)
    assert (new.segment, new.offset) == (old.segment, old.offset)
    assert new.generation != old.generation
    with pytest.raises(ArenaError):
        shm_mod.attach_view(old)
    view = shm_mod.attach_view(new)
    try:
        assert bytes(view) == b"b" * 256
    finally:
        view.release()
    arena.release(new)


def test_refcount_keeps_slot_alive(arena):
    ticket = arena.publish(b"ref" * 100)
    arena.retain(ticket)
    arena.release(ticket)  # drops to 1 — still live
    view = shm_mod.attach_view(ticket)
    view.release()
    arena.release(ticket)  # drops to 0 — tombstoned
    with pytest.raises(ArenaError):
        shm_mod.attach_view(ticket)


def test_arena_grows_past_one_segment(arena):
    # segment_bytes is 64 KiB; publish several larger blobs
    tickets = [arena.publish(os.urandom(48 * 1024)) for _ in range(3)]
    assert arena.segments >= 2
    for t in tickets:
        view = shm_mod.attach_view(t)
        view.release()
        arena.release(t)
    assert arena.bytes_in_use == 0
    stats = arena.stats()
    assert stats["publishes"] == 3
    assert stats["released"] == 3


def test_close_is_idempotent_and_fails_closed(arena):
    live = arena.publish(b"still-mapped" * 10)
    arena.close()
    arena.close()
    assert arena.closed
    with pytest.raises(ArenaError):
        arena.publish(b"too late")
    with pytest.raises(ArenaError):
        shm_mod.attach_view(live)


# --------------------------------------------------------- REPRO_WORKERS


def test_repro_workers_env_override(monkeypatch, all_policies):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3
    inspector = BatchInspector(all_policies, mode="process")
    assert inspector.workers == 3
    inspector.close()


@pytest.mark.parametrize("bad", ["0", "-2", "abc", "1.5"])
def test_repro_workers_rejects_bad_values(monkeypatch, bad):
    monkeypatch.setenv("REPRO_WORKERS", bad)
    with pytest.raises(ValueError):
        default_workers()


def test_repro_workers_default_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert 1 <= default_workers() <= 8


# -------------------------------------------------------- input snapshots


def test_mutable_buffers_are_snapshotted(all_policies, good_elf):
    """bytearray/memoryview inputs are coerced once up front: cache keys
    and verdicts belong to the bytes at submission time, not whatever
    the caller later does to the buffer."""
    with BatchInspector(all_policies, mode="serial") as inspector:
        oracle = inspector.inspect_batch([("a", good_elf)]).results[0]
        assert oracle.report is not None

        buf = bytearray(good_elf)
        first = inspector.inspect_batch([("a", buf)]).results[0]
        assert first.source == "cache"  # same content as the bytes submit
        assert first.report.serialize() == oracle.report.serialize()

        buf[0] ^= 0xFF  # caller mutates their buffer afterwards...
        second = inspector.inspect_batch([("a", buf)]).results[0]
        # ...and gets a fresh verdict for the new content (corrupt magic
        # -> structural reject), not the stale cache entry
        assert second.source != "cache"
        assert not second.report.compliant
        assert second.report.rejected_stage == "elf"

        # the original content's entry was never poisoned
        again = inspector.inspect_batch([("a", good_elf)]).results[0]
        assert again.source == "cache"
        assert again.report.serialize() == oracle.report.serialize()


def test_memoryview_input_matches_bytes(all_policies, good_elf):
    with BatchInspector(all_policies, mode="serial", cache=False) as insp:
        a = insp.inspect_batch([("a", good_elf)]).results[0]
        b = insp.inspect_batch([("a", memoryview(good_elf))]).results[0]
    assert a.report.serialize() == b.report.serialize()


# -------------------------------------------------- inspector lifecycle


def test_inspector_close_is_idempotent(all_policies, good_elf):
    inspector = BatchInspector(all_policies, mode="process", workers=2)
    report = inspector.inspect_batch([("a", good_elf)])
    assert report.results[0].report is not None
    assert inspector.arena_stats() is not None
    inspector.close()
    inspector.close()
    assert inspector.arena_stats() is None


def test_close_with_inflight_future_then_reuse(all_policies, good_elf):
    """A timed-out worker may still be reading its slot: close() must
    drain the pool before unlinking the arena, and the inspector must
    come back with a correct verdict afterwards."""
    inspector = BatchInspector(
        all_policies, mode="process", workers=2, timeout=1e-6,
    )
    rushed = inspector.inspect_batch([("a", good_elf)]).results[0]
    assert rushed.report is None
    assert "timeout" in (rushed.error or "")
    # the timed-out worker's ticket is parked, not freed under it
    assert inspector.arena_stats()["bytes_in_use"] > 0
    inspector.close()

    inspector.timeout = None
    fresh = inspector.inspect_batch([("b", good_elf)]).results[0]
    assert fresh.report is not None
    assert fresh.report.compliant
    assert inspector.arena_stats()["bytes_in_use"] == 0
    inspector.close()


def test_shm_arena_drains_after_batch(all_policies, libc):
    corpus = generate_variant_corpus(6, libc=libc)
    with BatchInspector(all_policies, mode="process", workers=2) as insp:
        insp.inspect_batch(corpus)
        stats = insp.arena_stats()
        assert stats["publishes"] > 0
        assert stats["bytes_in_use"] == 0


# ------------------------------------------------- cross-mode differential


def _fingerprint(item):
    if item.report is not None:
        return ("report", item.report.serialize())
    return ("error", item.error)


def test_all_executor_modes_produce_identical_wire(all_policies, libc):
    """serial / thread / process+pickle / process+shm: byte-identical
    verdict wire for every variant kind, including the reject paths."""
    corpus = generate_variant_corpus(9, libc=libc)  # one full rotation
    runs = {}
    for name, kwargs in (
        ("serial", dict(mode="serial")),
        ("thread", dict(mode="thread")),
        ("process-pickle", dict(mode="process", shared_memory=False)),
        ("process-shm", dict(mode="process", shared_memory=True)),
    ):
        with BatchInspector(
            all_policies, workers=2, cache=False, **kwargs
        ) as insp:
            report = insp.inspect_batch(corpus)
        runs[name] = {
            item.label: _fingerprint(item) for item in report.results
        }
    oracle = runs.pop("serial")
    for name, prints in runs.items():
        assert prints == oracle, f"{name} diverged from the serial oracle"


def test_shm_flag_is_ignored_outside_process_mode(all_policies):
    for mode in ("serial", "thread"):
        insp = BatchInspector(all_policies, mode=mode, shared_memory=True)
        assert insp.shared_memory is False
        assert insp.arena_stats() is None
        insp.close()


# ----------------------------------------------------------- daemon path


def test_daemon_serves_through_shm_inspector(all_policies, good_elf, demo_plain):
    """End-to-end: attested client -> daemon -> process+shm executor."""
    daemon = small_daemon(
        all_policies, inspector_mode="process", workers=2,
    )
    try:
        assert daemon.inspector.shared_memory is True
        client = daemon_client(daemon, all_policies, timeout=20.0)
        with client:
            good = client.inspect(good_elf, label="good")
            bad = client.inspect(demo_plain.elf, label="bad")
        assert good.accepted
        assert good.report.compliant
        assert bad.report is not None and not bad.report.compliant
    finally:
        daemon.stop()
        daemon.inspector.close()
