"""Resilience layer of the batch service: exact, reproducible recovery.

Everything here runs on a :class:`FakeClock` shared between the fault
plan and the inspector, so backoff schedules, deadlines, and injected
hangs are asserted to the exact fake-second — and two runs under the
same seed are asserted identical.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.faults import FakeClock, FaultPlan, FaultSpec, injected
from repro.service import BatchInspector, InspectionCache, cache_key
from repro.service.batch import Quarantine

from tests.conftest import compile_demo


@pytest.fixture(scope="module")
def good_elf(libc):
    return compile_demo(libc, stack_protector=True, ifcc=True, name="resil").elf


def _worker_raise_plan(clock, *, max_triggers=None, after=0):
    return FaultPlan(
        [FaultSpec(hook="service.batch.worker", kind="raise",
                   after=after, max_triggers=max_triggers)],
        clock=clock,
    )


# ----------------------------------------------------------- backoff


def test_backoff_schedule_is_exact(all_policies, good_elf):
    clock = FakeClock()
    inspector = BatchInspector(
        all_policies, mode="serial", cache=False,
        retries=2, backoff_base=0.05, clock=clock,
    )
    with injected(_worker_raise_plan(clock)):
        report = inspector.inspect_batch([("a", good_elf)])

    item = report.results[0]
    assert item.error is not None
    assert item.error.startswith("WorkerCrashError:")
    # 3 attempts, 2 sleeps: base, then doubled — exactly.
    assert clock.sleeps == [0.05, 0.1]
    assert report.summary.resilience["retry_attempts"] == 2


def test_single_transient_failure_recovers_on_retry(all_policies, good_elf):
    clock = FakeClock()
    inspector = BatchInspector(
        all_policies, mode="serial", cache=False,
        retries=1, backoff_base=0.05, clock=clock,
    )
    with injected(_worker_raise_plan(clock, max_triggers=1)):
        report = inspector.inspect_batch([("a", good_elf)])

    item = report.results[0]
    assert item.error is None
    assert item.accepted
    assert clock.sleeps == [0.05]
    assert report.summary.resilience["retry_attempts"] == 1
    assert report.summary.accepted == 1


def test_injected_hang_trips_deadline_not_wall_clock(all_policies, good_elf):
    clock = FakeClock()
    plan = FaultPlan(
        [FaultSpec(hook="service.batch.worker", kind="hang",
                   max_triggers=None)],
        clock=clock, hang_seconds=10.0,
    )
    inspector = BatchInspector(
        all_policies, mode="serial", cache=False,
        retries=5, deadline=5.0, clock=clock,
    )
    with injected(plan):
        report = inspector.inspect_batch([("a", good_elf)])

    item = report.results[0]
    assert item.error is not None
    assert item.error.startswith("DeadlineExceededError:")
    # one hang of 10 fake seconds burned the 5s budget — no retries after
    assert clock.sleeps == [10.0]
    assert report.summary.wall_seconds < 5.0  # real time, not fake time


# -------------------------------------------------------- quarantine


def test_quarantine_lifecycle_and_clean_retry(all_policies, good_elf):
    clock = FakeClock()
    cache = InspectionCache()
    inspector = BatchInspector(
        all_policies, mode="serial", cache=cache,
        quarantine_threshold=2, clock=clock,
    )
    key = cache_key(good_elf, all_policies)
    plan = _worker_raise_plan(clock)

    for expected_failures in (1, 2):
        with injected(plan):
            report = inspector.inspect_batch([("a", good_elf)])
        assert report.results[0].source == "error"
        assert inspector.quarantine.failures(key) == expected_failures
        plan.reset()

    assert inspector.quarantine.is_quarantined(key)

    # Quarantined: refused without any inspection work, even with no plan.
    report = inspector.inspect_batch([("a", good_elf)])
    item = report.results[0]
    assert item.source == "quarantined"
    assert item.error.startswith("QuarantinedError:")
    assert report.summary.resilience["quarantined_items"] == 1
    assert report.summary.resilience["quarantined_keys"] == 1

    # The failures never polluted the cache...
    assert key not in cache
    # ...so a release + clean retry computes the correct verdict.
    inspector.quarantine.release(key)
    report = inspector.inspect_batch([("a", good_elf)])
    assert report.results[0].accepted
    assert report.results[0].source == "inspected"
    assert key in cache
    assert inspector.quarantine.failures(key) == 0


def test_quarantine_validates_threshold():
    with pytest.raises(ValueError):
        Quarantine(0)
    q = Quarantine(1)
    q.record_failure(("x", "y"))
    assert q.is_quarantined(("x", "y"))
    assert len(q) == 1
    q.clear()
    assert len(q) == 0


# --------------------------------------------- error-path cache bug


def test_errors_and_timeouts_are_never_cached(all_policies, good_elf):
    """The regression: an item whose inspection raises or times out must
    leave no trace in the InspectionCache."""
    cache = InspectionCache()
    key = cache_key(good_elf, all_policies)

    clock = FakeClock()
    inspector = BatchInspector(
        all_policies, mode="serial", cache=cache, clock=clock,
    )
    with injected(_worker_raise_plan(clock)):
        report = inspector.inspect_batch([("a", good_elf)])
    assert report.results[0].error is not None
    assert key not in cache
    assert len(cache) == 0

    plan = FaultPlan(
        [FaultSpec(hook="service.batch.worker", kind="hang",
                   max_triggers=None)],
        clock=clock, hang_seconds=10.0,
    )
    deadline_inspector = BatchInspector(
        all_policies, mode="serial", cache=cache, deadline=5.0, clock=clock,
    )
    with injected(plan):
        report = deadline_inspector.inspect_batch([("a", good_elf)])
    assert report.results[0].error.startswith("DeadlineExceededError:")
    assert key not in cache

    # clean run: the verdict is computed fresh and correct
    report = inspector.inspect_batch([("a", good_elf)])
    assert report.results[0].accepted
    assert key in cache
    # and now served from cache
    report = inspector.inspect_batch([("a", good_elf)])
    assert report.results[0].source == "cache"
    assert report.results[0].accepted


def test_corrupt_verdict_wire_is_errored_not_cached(all_policies, good_elf):
    cache = InspectionCache()
    key = cache_key(good_elf, all_policies)
    plan = FaultPlan(
        [FaultSpec(hook="service.batch.verdict", kind="truncate",
                   max_triggers=None, truncate_divisor=8)],
    )
    inspector = BatchInspector(all_policies, mode="serial", cache=cache)
    with injected(plan):
        report = inspector.inspect_batch([("a", good_elf)])
    item = report.results[0]
    assert item.error is not None
    assert item.error.startswith("ServiceError:")
    assert "service.batch.verdict" in item.error
    assert key not in cache


# ------------------------------------------------------- degradation


def test_broken_pool_degrades_to_serial(all_policies, good_elf, demo_plain):
    """Kill a pool worker out from under the inspector: the batch still
    completes (serially) with correct verdicts, and the inspector stays
    degraded for subsequent batches."""
    inspector = BatchInspector(
        all_policies, mode="process", workers=2, cache=False,
    )
    executor = inspector._ensure_executor()
    victim = executor.submit(os._exit, 1)
    with pytest.raises(Exception):
        victim.result(timeout=30)

    corpus = [("good", good_elf), ("plain", demo_plain.elf)]
    report = inspector.inspect_batch(corpus)

    assert inspector.degraded
    assert report.summary.resilience["degraded_to_serial"] is True
    by_label = {r.label: r for r in report.results}
    assert by_label["good"].error is None and by_label["good"].accepted
    assert by_label["plain"].error is None and not by_label["plain"].accepted

    # next batch goes straight to serial — no pool resurrection
    report = inspector.inspect_batch(corpus)
    assert report.summary.errors == 0
    assert inspector._executor is None
    inspector.close()


# ------------------------------------------------------ determinism


def test_identical_seeds_identical_outcomes(all_policies, good_elf, demo_plain):
    corpus = [
        ("good", good_elf),
        ("plain", demo_plain.elf),
        ("garbage", b"\x7fNOT-AN-ELF" + bytes(64)),
    ]

    def run():
        clock = FakeClock()
        plan = FaultPlan.randomized(
            1234,
            hooks=("elf.reader", "x86.decoder", "service.batch.worker"),
            n_specs=6, probability=0.5, clock=clock,
        )
        inspector = BatchInspector(
            all_policies, mode="serial", cache=False,
            retries=1, deadline=5.0, clock=clock,
        )
        with injected(plan):
            report = inspector.inspect_batch(corpus)
        outcomes = [
            (r.label, r.accepted, r.source, r.error) for r in report.results
        ]
        events = [(e.hook, e.kind, e.call, e.spec_index) for e in plan.events]
        return outcomes, events, clock.sleeps

    first, second = run(), run()
    assert first == second
    assert first[1], "the seeded plan must actually have fired"


def test_batch_summary_resilience_schema_is_stable(all_policies, good_elf):
    """``summary.resilience`` is always present with the full key set.

    A plain batch reports the zeroed schema (monitoring consumers never
    see the key appear and disappear); a configured batch reports the
    same keys with live values.  This pins the JSON schema.
    """
    from repro.service.batch import ZERO_RESILIENCE

    inspector = BatchInspector(all_policies, mode="serial")
    report = inspector.inspect_batch([("a", good_elf)])
    payload = json.loads(report.to_json())
    assert payload["summary"]["resilience"] == ZERO_RESILIENCE
    assert report.summary.resilience == ZERO_RESILIENCE
    # with the layer on: same key set, live values
    resilient = BatchInspector(
        all_policies, mode="serial", retries=1, deadline=5.0,
        quarantine_threshold=2,
    )
    payload = json.loads(resilient.inspect_batch([("a", good_elf)]).to_json())
    block = payload["summary"]["resilience"]
    assert set(block) == set(ZERO_RESILIENCE)
    assert block["retries"] == 1
    assert block["deadline"] == 5.0
    assert block["retry_attempts"] == 0
    assert block["quarantined_keys"] == 0
    assert block["degraded_to_serial"] is False

    # the schema contract itself: key -> JSON type, pinned
    schema = {
        "retries": int, "retry_attempts": int,
        "deadline": (int, float, type(None)),
        "quarantined_items": int, "quarantined_keys": int,
        "degraded_to_serial": bool,
    }
    for block in (payload["summary"]["resilience"], ZERO_RESILIENCE):
        assert set(block) == set(schema)
        for key, types in schema.items():
            assert isinstance(block[key], types), key
