"""The in-enclave loader and the provider-facing compliance report."""

from __future__ import annotations

import pytest

from repro.core import ComplianceReport, Loader
from repro.elf import read_elf
from repro.errors import RejectionError
from repro.sgx import CycleMeter, HostOS, PAGE_SIZE, SgxMachine, SgxParams
from repro.x86 import decode_all, validate


@pytest.fixture()
def runtime():
    host = HostOS(SgxMachine(SgxParams(epc_pages=512, heap_initial_pages=4)))
    rt = host.build_enclave(
        base=0x10000, size=0x800000,
        bootstrap_pages={0x10000: b"ENGARDE"},
        client_pages=64,
    )
    host.machine.eenter(rt.enclave)
    return rt


class TestLoader:
    def test_load_demo(self, runtime, demo_plain):
        image = read_elf(demo_plain.elf)
        loaded = Loader(CycleMeter()).load(
            image, runtime.enclave, runtime.client_base, runtime.client_pages
        )
        assert loaded.load_bias == runtime.client_base - 0x1000
        assert loaded.entry == loaded.load_bias + image.entry
        assert loaded.relocations_applied == demo_plain.relocation_count
        assert loaded.executable_pages
        assert not set(loaded.executable_pages) & set(loaded.writable_pages)

    def test_text_lands_in_enclave(self, runtime, demo_plain):
        image = read_elf(demo_plain.elf)
        loaded = Loader(CycleMeter()).load(
            image, runtime.enclave, runtime.client_base, runtime.client_pages
        )
        text = image.text_sections[0]
        in_enclave = runtime.enclave.read(
            loaded.load_bias + text.vaddr, len(text.data)
        )
        assert in_enclave == text.data
        insns = decode_all(in_enclave)
        validate(insns, entry=image.entry - text.vaddr,
                 roots=[s.value - text.vaddr for s in image.function_symbols()])

    def test_relocations_rebased(self, runtime, demo_instrumented):
        image = read_elf(demo_instrumented.elf)
        loaded = Loader(CycleMeter()).load(
            image, runtime.enclave, runtime.client_base, runtime.client_pages
        )
        assert image.relocations
        for rela in image.relocations:
            slot = loaded.load_bias + rela.r_offset
            value = int.from_bytes(runtime.enclave.read(slot, 8), "little")
            assert value == loaded.load_bias + rela.r_addend

    def test_stack_is_mapped_and_zeroed(self, runtime, demo_plain):
        image = read_elf(demo_plain.elf)
        loaded = Loader(CycleMeter()).load(
            image, runtime.enclave, runtime.client_base, runtime.client_pages
        )
        assert runtime.enclave.read(loaded.stack_top, 16) == b"\x00" * 16

    def test_region_too_small(self, runtime, demo_plain):
        image = read_elf(demo_plain.elf)
        with pytest.raises(RejectionError, match="pages"):
            Loader(CycleMeter()).load(image, runtime.enclave,
                                      runtime.client_base, 4)

    def test_cycle_charges(self, runtime, demo_plain):
        meter = CycleMeter()
        Loader(meter).load(
            read_elf(demo_plain.elf), runtime.enclave,
            runtime.client_base, runtime.client_pages,
        )
        events = meter.total.events
        assert events["loader_setup"] == 1
        assert events["segment_map"] == 2
        assert events["reloc_apply"] == demo_plain.relocation_count
        assert events["page_map"] > 0


class TestComplianceReport:
    def test_accepted_roundtrip(self):
        report = ComplianceReport.accepted(
            "nginx", ["library-linking"], [0x20000, 0x21000]
        )
        again = ComplianceReport.deserialize(report.serialize())
        assert again == report

    def test_rejected_roundtrip(self):
        report = ComplianceReport.rejected(
            "job", ["a", "b"], failed=["a"], stage=None
        )
        again = ComplianceReport.deserialize(report.serialize())
        assert again == report
        assert not again.compliant

    def test_structural_rejection_roundtrip(self):
        report = ComplianceReport.rejected("job", ["a"], stage="disasm")
        again = ComplianceReport.deserialize(report.serialize())
        assert again.rejected_stage == "disasm"

    def test_invariants_enforced(self):
        with pytest.raises(ValueError):
            ComplianceReport("x", True, policies_failed=("p",))
        with pytest.raises(ValueError):
            ComplianceReport("x", False, executable_pages=(0x1000,))

    def test_wire_format_is_content_free(self, demo_plain):
        # The serialized report must never contain client code bytes.
        report = ComplianceReport.accepted("demo", ["p"], [0x20000])
        wire = report.serialize()
        text = read_elf(demo_plain.elf).text_sections[0].data
        assert text[:64] not in wire
        assert len(wire) < 4096
