"""Property tests on the compliance report wire format."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComplianceReport

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-0123456789", min_size=1, max_size=24
)
pages = st.lists(
    st.integers(0, 2**40).map(lambda v: v & ~0xFFF), max_size=16, unique=True
)


@given(benchmark=names, policies=st.lists(names, max_size=6, unique=True),
       page_list=pages)
@settings(max_examples=100, deadline=None)
def test_accepted_roundtrip(benchmark, policies, page_list):
    report = ComplianceReport.accepted(benchmark, policies, sorted(page_list))
    assert ComplianceReport.deserialize(report.serialize()) == report


@given(benchmark=names, policies=st.lists(names, min_size=1, max_size=6,
                                          unique=True),
       n_failed=st.integers(0, 6))
@settings(max_examples=100, deadline=None)
def test_rejected_roundtrip(benchmark, policies, n_failed):
    failed = policies[: min(n_failed, len(policies))] or None
    stage = None if failed else "disasm"
    report = ComplianceReport.rejected(
        benchmark, policies, failed=failed, stage=stage
    )
    again = ComplianceReport.deserialize(report.serialize())
    assert again == report
    assert not again.compliant


@given(page_list=pages)
@settings(max_examples=50, deadline=None)
def test_wire_size_bounded(page_list):
    report = ComplianceReport.accepted("bench", ["p1", "p2", "p3"],
                                       sorted(page_list))
    # the provider-visible message stays small: verdict + addresses only
    assert len(report.serialize()) < 64 + 20 * (len(page_list) + 4)
