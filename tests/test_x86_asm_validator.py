"""Assembler (labels, bundling, fixups) and the NaCl validator."""

from __future__ import annotations

import pytest

from repro.errors import EncodeError, ValidationError
from repro.x86 import (
    BUNDLE_SIZE, RAX, RCX, RSP,
    Assembler, Enc, Mem, decode_all, validate,
    check_bundles, check_reachability, check_targets,
)


class TestLabels:
    def test_backward_branch(self):
        asm = Assembler()
        loop = asm.label("loop")
        asm.mov_imm(10, RCX)
        asm.bind(loop)
        asm.alu_imm("sub", 1, RCX)
        asm.jcc_label("jne", loop)
        code = asm.finish()
        insns = decode_all(code)
        jne = [i for i in insns if i.mnemonic == "jne"][0]
        sub = [i for i in insns if i.mnemonic == "sub"][0]
        assert jne.target == sub.offset

    def test_forward_branch(self):
        asm = Assembler()
        done = asm.label("done")
        asm.jmp_label(done)
        asm.mov_imm(1, RAX)
        asm.bind(done)
        asm.ret()
        insns = decode_all(asm.finish())
        jmp = insns[0]
        ret = [i for i in insns if i.mnemonic == "ret"][0]
        assert jmp.target == ret.offset

    def test_unbound_label_rejected(self):
        asm = Assembler()
        lbl = asm.label("never")
        asm.jmp_label(lbl)
        with pytest.raises(EncodeError):
            asm.finish()

    def test_double_bind_rejected(self):
        asm = Assembler()
        lbl = asm.label("once")
        asm.bind(lbl)
        with pytest.raises(EncodeError):
            asm.bind(lbl)


class TestBundling:
    def test_no_instruction_crosses_bundle(self):
        asm = Assembler()
        for i in range(100):
            asm.mov_imm(0x1122334455667788, RAX)  # 10-byte movabs
        insns = decode_all(asm.finish())
        check_bundles(insns)  # must not raise

    def test_bundling_disabled(self):
        asm = Assembler(bundle=False)
        for i in range(10):
            asm.mov_imm(0x1122334455667788, RAX)
        insns = decode_all(asm.finish())
        with pytest.raises(ValidationError):
            check_bundles(insns)

    def test_align_starts_fresh_bundle(self):
        asm = Assembler()
        asm.push(RAX)
        asm.align()
        assert asm.offset % BUNDLE_SIZE == 0
        marker = asm.offset
        asm.ret()
        insns = decode_all(asm.finish())
        assert any(i.offset == marker and i.mnemonic == "ret" for i in insns)

    def test_instruction_count_tracks_padding(self):
        asm = Assembler()
        asm.push(RAX)
        asm.align()
        asm.ret()
        code = asm.finish()
        assert asm.instruction_count == len(decode_all(code))


class TestExternalFixups:
    def test_call_symbol_records_fixup(self):
        asm = Assembler()
        asm.call_symbol("memcpy")
        asm.ret()
        asm.finish()
        (fx,) = asm.external_fixups
        assert fx.symbol == "memcpy"
        assert fx.next_offset - fx.patch_offset == 4

    def test_lea_symbol_addend(self):
        asm = Assembler()
        asm.lea_symbol("table", RAX, addend=16)
        asm.finish()
        (fx,) = asm.external_fixups
        assert fx.addend == 16

    def test_mov_symbol_load(self):
        asm = Assembler()
        asm.mov_load_symbol("slot", RCX)
        code = asm.finish()
        insns = decode_all(code)
        assert insns[0].mnemonic == "mov"
        assert insns[0].operands[0].rip_relative


class TestValidator:
    def _linear(self):
        asm = Assembler()
        asm.mov_imm(1, RAX)
        asm.ret()
        return decode_all(asm.finish())

    def test_valid_code_passes(self):
        validate(self._linear())

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            validate([])

    def test_branch_into_middle_of_instruction(self):
        # jmp +3 lands inside the 5-byte mov imm32
        code = Enc.jmp_rel8(3) + Enc.mov_imm(7, RAX.as_bits(32)) + Enc.ret()
        insns = decode_all(code)
        with pytest.raises(ValidationError):
            check_targets(insns)

    def test_branch_outside_region(self):
        code = Enc.jmp_rel32(0x1000) + Enc.ret()
        insns = decode_all(code)
        with pytest.raises(ValidationError):
            check_targets(insns)

    def test_unreachable_code_detected(self):
        # ret; mov — the mov can never execute and is not padding
        code = Enc.ret() + Enc.mov_imm(1, RAX)
        insns = decode_all(code)
        with pytest.raises(ValidationError):
            check_reachability(insns, entry=0)

    def test_padding_after_terminator_allowed(self):
        code = Enc.ret() + Enc.nop(3) + Enc.nop(1)
        insns = decode_all(code)
        check_reachability(insns, entry=0)

    def test_roots_make_code_reachable(self):
        # two functions: entry returns; second reachable only via its symbol
        first = Enc.ret()
        code = first + Enc.mov_imm(1, RAX) + Enc.ret()
        insns = decode_all(code)
        with pytest.raises(ValidationError):
            check_reachability(insns, entry=0)
        check_reachability(insns, entry=0, roots=[len(first)])

    def test_bad_entry_rejected(self):
        insns = self._linear()
        with pytest.raises(ValidationError):
            check_reachability(insns, entry=1)

    def test_call_fallthrough_is_reachable(self):
        code = Enc.call_rel32(1) + Enc.ret() + Enc.ret()
        insns = decode_all(code)
        validate(insns)

    def test_conditional_branch_both_paths(self):
        asm = Assembler()
        skip = asm.label("skip")
        asm.alu_imm("cmp", 0, RAX)
        asm.jcc_label("je", skip)
        asm.mov_imm(1, RAX)
        asm.bind(skip)
        asm.ret()
        validate(decode_all(asm.finish()))
