"""Property-based security invariants (hypothesis).

These pin the threat-model guarantees from paper section 3:
measurement binds content, the EPC never leaks plaintext, tampered
transfers are rejected, and compliance reports carry no content.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import HmacDrbg
from repro.crypto.channel import ServerHandshake, client_handshake
from repro.errors import CryptoError, NetError, SgxError
from repro.net import SocketPair
from repro.sgx import Measurement, SgxMachine, SgxParams
from repro.sgx.params import PAGE_SIZE

import pytest

BASE = 0x10000

page_contents = st.binary(min_size=0, max_size=256)


class TestMeasurementBinding:
    @given(page_contents, page_contents)
    @settings(max_examples=40, deadline=None)
    def test_different_content_different_measurement(self, a, b):
        def measure(content):
            m = SgxMachine(SgxParams(epc_pages=8, heap_initial_pages=1))
            e = m.ecreate(BASE, 0x10000)
            m.add_measured_page(e, BASE, content)
            return m.einit(e)

        # EEXTEND measures whole pages: zero-padded-equal contents are the
        # same page, anything else must change MRENCLAVE.
        same_page = a.ljust(PAGE_SIZE, b"\x00") == b.ljust(PAGE_SIZE, b"\x00")
        assert (measure(a) == measure(b)) == same_page

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=4, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_page_set_bound(self, page_indices):
        m = SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=1))
        e = m.ecreate(BASE, 0x10000)
        for idx in page_indices:
            m.add_measured_page(e, BASE + idx * PAGE_SIZE, b"x")
        first = m.einit(e)

        m2 = SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=1))
        e2 = m2.ecreate(BASE, 0x10000)
        for idx in page_indices:
            m2.add_measured_page(e2, BASE + idx * PAGE_SIZE, b"x")
        assert m2.einit(e2) == first

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_measurement_log_replay(self, content):
        """A pure Measurement replay of the build equals the machine's."""
        machine = SgxMachine(SgxParams(epc_pages=8, heap_initial_pages=1))
        e = machine.ecreate(BASE, 0x10000)
        machine.add_measured_page(e, BASE, content)
        real = machine.einit(e)

        m = Measurement()
        m.ecreate(BASE, 0x10000, 0)
        m.eadd(BASE, "REG", "rwx")
        padded = content.ljust(PAGE_SIZE, b"\x00")
        for off in range(0, PAGE_SIZE, 256):
            m.eextend(BASE + off, padded[off:off + 256])
        assert m.finalize() == real


class TestEpcConfidentiality:
    @given(st.binary(min_size=16, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_plaintext_never_in_ciphertext(self, secret):
        machine = SgxMachine(SgxParams(epc_pages=8, heap_initial_pages=1))
        e = machine.ecreate(BASE, 0x10000)
        machine.eadd(e, BASE)
        machine.einit(e)
        e.write(BASE, secret)
        page = e.pages[BASE]
        ct = machine.epc.read_ciphertext(page)
        assert secret not in ct

    @given(st.integers(0, PAGE_SIZE - 1), st.integers(1, 255))
    @settings(max_examples=30, deadline=None)
    def test_any_single_byte_tamper_detected(self, position, delta):
        machine = SgxMachine(SgxParams(epc_pages=8, heap_initial_pages=1))
        e = machine.ecreate(BASE, 0x10000)
        machine.eadd(e, BASE)
        machine.einit(e)
        e.write(BASE, b"data")
        page = e.pages[BASE]
        ct = bytearray(machine.epc.read_ciphertext(page))
        ct[position] ^= delta
        machine.epc.tamper(page, bytes(ct))
        with pytest.raises(SgxError):
            e.read(BASE, 4)


class TestChannelIntegrity:
    @given(st.binary(min_size=1, max_size=256), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_any_record_tamper_detected(self, payload, seed):
        pair = SocketPair()
        hs = ServerHandshake(pair.right, HmacDrbg(b"s"), rsa_bits=512)
        hs.send_public_key()
        cli, _ = client_handshake(pair.left, HmacDrbg(b"c"))
        srv = hs.complete()

        cli.send(payload)
        frame = bytearray(pair.right._inbox[0])
        rng = HmacDrbg(seed.to_bytes(4, "big"))
        pos = rng.randint(4, len(frame) - 1)  # skip the length prefix
        frame[pos] ^= rng.randint(1, 255)
        pair.right._inbox[0] = bytes(frame)
        with pytest.raises((CryptoError, NetError)):
            srv.recv()

    @given(st.lists(st.binary(min_size=0, max_size=512), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_record_stream_preserved(self, payloads):
        pair = SocketPair()
        hs = ServerHandshake(pair.right, HmacDrbg(b"s"), rsa_bits=512)
        hs.send_public_key()
        cli, _ = client_handshake(pair.left, HmacDrbg(b"c"))
        srv = hs.complete()
        for p in payloads:
            cli.send(p)
        assert [srv.recv() for _ in payloads] == payloads


class TestReportLeakFreedom:
    @given(st.binary(min_size=48, max_size=96))
    @settings(max_examples=20, deadline=None)
    def test_rejection_reports_carry_no_content(self, content):
        """Whatever bytes the client sends, a rejection report must not
        echo any of them back to the provider."""
        from repro.core import ComplianceReport, EnGarde, PolicyRegistry

        engarde = EnGarde(PolicyRegistry([]))
        outcome = engarde.inspect(content, benchmark="fuzz")
        wire = outcome.report.serialize()
        # no 8-byte window of the client content appears in the report
        for i in range(0, len(content) - 8, 8):
            assert content[i:i + 8] not in wire
        assert ComplianceReport.deserialize(wire) == outcome.report
