"""End-to-end provisioning: the full mutual-trust protocol and its
adversarial cases (the paper's threat model, section 3)."""

from __future__ import annotations

import pytest

from repro.core import (
    EnclaveClient,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
    expected_mrenclave,
    provision,
)
from repro.errors import AttestationError, EnclaveSealedError, SgxError
from repro.net import SocketPair
from tests.conftest import compile_demo, small_provider


class TestHappyPath:
    def test_compliant_client_accepted(self, libc, all_policies, demo_instrumented):
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        result = provision(provider, client)
        assert result.accepted
        assert result.report.compliant
        assert result.client_verdict == result.report
        assert result.runtime is not None and result.runtime.enclave.sealed

    def test_all_phases_charged(self, all_policies, demo_instrumented):
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        result = provision(provider, client)
        for phase in ("disassembly", "policy", "loading"):
            assert result.meter.phase_cycles(phase) > 0, phase

    def test_code_loaded_and_executable(self, all_policies, demo_instrumented):
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        result = provision(provider, client)
        loaded = result.outcome.loaded
        enclave = result.runtime.enclave
        assert enclave.fetch_code(loaded.entry, 1)  # entry is executable
        with pytest.raises(SgxError):
            enclave.write(loaded.executable_pages[0], b"post-hoc patch")

    def test_deterministic_outcome(self, all_policies, demo_instrumented):
        def run():
            provider = small_provider(all_policies)
            client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
            result = provision(provider, client)
            return (result.accepted, result.meter.total_cycles)

        assert run() == run()


class TestRejection:
    def test_noncompliant_client_rejected_and_torn_down(self, libc, all_policies,
                                                        demo_plain):
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_plain.elf, policies=all_policies)
        result = provision(provider, client)
        assert not result.accepted
        assert result.runtime is None
        assert set(result.report.policies_failed) == {
            "stack-protection", "indirect-function-call",
        }
        assert result.report.executable_pages == ()
        # the enclave was destroyed: its EPC pages are back in the pool
        assert provider.machine.epc.used_pages == 0

    def test_garbage_content_rejected_at_elf_stage(self, all_policies):
        provider = small_provider(all_policies)
        client = EnclaveClient(b"\x00" * 5000, policies=all_policies)
        result = provision(provider, client)
        assert not result.accepted
        assert result.report.rejected_stage == "elf"

    def test_client_learns_the_verdict_authentically(self, all_policies, demo_plain):
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_plain.elf, policies=all_policies)
        result = provision(provider, client)
        # verdict arrived over the authenticated channel
        assert client.verdict is not None
        assert client.verdict.compliant == result.report.compliant


class TestAttestationBinding:
    def test_wrong_policy_set_fails_attestation(self, libc, all_policies,
                                                demo_instrumented):
        # The provider loads a *different* policy set than agreed: the
        # measurement no longer matches what the client expects.
        provider_policies = PolicyRegistry([IfccPolicy()])
        provider = small_provider(provider_policies)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        with pytest.raises(AttestationError, match="MRENCLAVE"):
            provision(provider, client)

    def test_expected_mrenclave_matches_real_build(self, all_policies,
                                                   demo_instrumented):
        provider = small_provider(all_policies)
        pair = SocketPair()
        session = provider.start_session(pair.right)
        expected = expected_mrenclave(
            all_policies,
            heap_pages=provider.heap_pages,
            client_pages=provider.client_pages,
            enclave_pages=provider.enclave_pages,
        )
        assert session.runtime.enclave.mrenclave == expected

    def test_channel_key_bound_to_quote(self, all_policies):
        provider = small_provider(all_policies)
        pair = SocketPair()
        session = provider.start_session(pair.right)
        quote = provider.attest(session, challenge=b"c")
        fingerprint = session.handshake._keypair.public_key.fingerprint()
        assert quote.report_data[:32] == fingerprint

    def test_replayed_quote_rejected(self, all_policies, demo_instrumented):
        provider = small_provider(all_policies)
        pair = SocketPair()
        session = provider.start_session(pair.right)
        old_quote = provider.attest(session, challenge=b"old-challenge")
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        fresh = client.challenge()
        with pytest.raises(AttestationError, match="challenge"):
            client.verify_attestation(
                old_quote, provider.quoting_enclave.device_public_key, fresh,
                heap_pages=provider.heap_pages,
                client_pages=provider.client_pages,
                enclave_pages=provider.enclave_pages,
            )


class TestConfidentiality:
    def test_provider_never_sees_plaintext(self, all_policies, demo_instrumented):
        """The core claim: the provider observes only ciphertext on the
        wire and in the EPC, yet still gets a verdict."""
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)

        pair = SocketPair()
        session = provider.start_session(pair.right, benchmark=client.benchmark)
        challenge = client.challenge()
        quote = provider.attest(session, challenge)
        fingerprint = client.verify_attestation(
            quote, provider.quoting_enclave.device_public_key, challenge,
            heap_pages=provider.heap_pages, client_pages=provider.client_pages,
            enclave_pages=provider.enclave_pages,
        )
        client.open_channel(pair.left, fingerprint)

        # capture everything that crosses the wire
        wire = []
        original = pair.left.send

        def spy(message):
            wire.append(message)
            original(message)

        pair.left.send = spy
        client.send_content()
        report = provider.run_engarde(session)
        assert report.compliant

        text = demo_instrumented.elf
        joined = b"".join(wire)
        for probe_at in (0, 0x1000, len(text) // 2):
            assert text[probe_at:probe_at + 48] not in joined

        # and the EPC view is ciphertext
        base = session.runtime.client_base
        observed = provider.host.peek_enclave_memory(session.runtime, base + 0x1000)
        assert text[0x1000:0x1040] not in observed

    def test_report_reveals_only_pages_and_verdict(self, all_policies,
                                                   demo_instrumented):
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        result = provision(provider, client)
        wire = result.report.serialize()
        assert demo_instrumented.elf[0x1000:0x1030] not in wire
        # pages are page-aligned addresses inside the client region
        for page in result.report.executable_pages:
            assert page % 4096 == 0

    def test_sealed_after_acceptance(self, all_policies, demo_instrumented):
        provider = small_provider(all_policies)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        result = provision(provider, client)
        with pytest.raises(EnclaveSealedError):
            provider.machine.eaug(
                result.runtime.enclave,
                result.runtime.client_base + result.runtime.client_pages * 4096,
            )


class TestMultiplePolicies:
    def test_single_policy_subsets(self, libc, demo_plain):
        # Plain binary passes library-linking alone, fails the others.
        lib_only = PolicyRegistry([LibraryLinkingPolicy(libc.reference_hashes())])
        provider = small_provider(lib_only)
        client = EnclaveClient(demo_plain.elf, policies=lib_only)
        assert provision(provider, client).accepted

        sp_only = PolicyRegistry(
            [StackProtectionPolicy(exempt_functions=set(libc.offsets))]
        )
        provider = small_provider(sp_only)
        client = EnclaveClient(demo_plain.elf, policies=sp_only)
        assert not provision(provider, client).accepted

    def test_failed_policies_enumerated(self, libc, all_policies):
        binary = compile_demo(libc, stack_protector=True, ifcc=False)
        provider = small_provider(all_policies)
        client = EnclaveClient(binary.elf, policies=all_policies)
        result = provision(provider, client)
        assert result.report.policies_failed == ("indirect-function-call",)


class TestPolicyConfigBinding:
    def test_different_hash_db_fails_attestation(self, libc, libc_old,
                                                 demo_instrumented):
        """A provider loading the same-named policy with a *different*
        golden database must produce a different MRENCLAVE."""
        from repro.core import LibraryLinkingPolicy, PolicyRegistry
        from repro.errors import AttestationError

        agreed = PolicyRegistry([LibraryLinkingPolicy(libc.reference_hashes())])
        doctored = PolicyRegistry(
            [LibraryLinkingPolicy(libc_old.reference_hashes())]
        )
        provider = small_provider(doctored)
        client = EnclaveClient(demo_instrumented.elf, policies=agreed)
        with pytest.raises(AttestationError, match="MRENCLAVE"):
            provision(provider, client)

    def test_different_exemptions_fail_attestation(self, libc, all_policies,
                                                   demo_instrumented):
        from repro.core import (IfccPolicy, LibraryLinkingPolicy,
                                PolicyRegistry, StackProtectionPolicy)
        from repro.errors import AttestationError

        weaker = PolicyRegistry([
            LibraryLinkingPolicy(libc.reference_hashes()),
            # exempting every function guts the policy
            StackProtectionPolicy(
                exempt_functions=set(libc.offsets) | {"main", "helper", "callback"}
            ),
            IfccPolicy(),
        ])
        provider = small_provider(weaker)
        client = EnclaveClient(demo_instrumented.elf, policies=all_policies)
        with pytest.raises(AttestationError, match="MRENCLAVE"):
            provision(provider, client)
