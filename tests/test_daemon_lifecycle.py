"""Lifecycle regression tests for the inspection daemon.

Graceful shutdown is a protocol promise: a ``stop(drain=True)`` with
requests in flight must answer every one of them before the connection
closes, refuse all new connections while draining, and leave the warm
state — verdict cache, quarantine, enclave pool, metrics — intact for
the next ``start()`` on the same daemon object.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import EnGarde
from repro.errors import NetError
from repro.faults.hooks import injected
from repro.faults.plan import FaultPlan, FaultSpec
from repro.service import InspectionDaemon, generate_variant_corpus

from tests.conftest import daemon_client, small_daemon


@pytest.fixture(scope="module")
def corpus(libc):
    return generate_variant_corpus(6, libc=libc)


@pytest.fixture(scope="module")
def baseline(corpus, all_policies):
    engarde = EnGarde(all_policies)
    return {
        label: engarde.inspect(raw, benchmark=label).report.serialize()
        for label, raw in corpus
    }


class _GatedDaemon(InspectionDaemon):
    """A daemon whose inspections block on a gate — lets a test hold a
    request in flight while it pulls the shutdown lever."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()

    def _inspect(self, label, raw):
        self.entered.set()
        assert self.gate.wait(30.0), "test forgot to open the gate"
        return super()._inspect(label, raw)


def test_graceful_stop_drains_inflight_then_refuses(
    all_policies, corpus, baseline
):
    daemon = _GatedDaemon(
        all_policies, pool_size=1, rsa_bits=768,
        heap_pages=64, client_pages=64, enclave_pages=0x2000,
    )
    daemon.start()
    client = daemon_client(daemon, all_policies, timeout=20.0)
    client.open()

    label, raw = corpus[0]
    verdicts: list = []
    submitter = threading.Thread(
        target=lambda: verdicts.append(client.inspect(raw, label))
    )
    submitter.start()
    assert daemon.entered.wait(10.0), "request never reached the inspector"

    stopper = threading.Thread(target=daemon.stop)
    stopper.start()
    # stopping implies: no new connections, status says so
    deadline = time.monotonic() + 5.0
    while daemon.accepting and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not daemon.accepting
    with pytest.raises(NetError, match="not accepting"):
        daemon.connect_inproc()

    # open the gate: the in-flight request must drain and be ANSWERED
    daemon.gate.set()
    submitter.join(20.0)
    stopper.join(20.0)
    assert not submitter.is_alive() and not stopper.is_alive()
    (verdict,) = verdicts
    assert verdict.error is None, verdict.error
    assert verdict.wire == baseline[label]
    with daemon._conn_lock:
        assert not daemon._connections


def test_stop_without_drain_closes_immediately(all_policies):
    daemon = small_daemon(all_policies)
    client_sock = daemon.connect_inproc(timeout=2.0)
    daemon.stop(drain=False)
    # the daemon side is gone; any use of the half-open pair fails fast
    with pytest.raises(NetError):
        client_sock.recv(timeout=0.5)


def test_warm_state_survives_stop_start_cycle(
    all_policies, corpus, baseline
):
    """Caches, quarantine, pool, and metrics carry across stop()/start()."""
    daemon = small_daemon(all_policies, quarantine_threshold=1)
    label, raw = corpus[0]
    bad_label, bad_raw = corpus[1]

    client = daemon_client(daemon, all_policies)
    first = client.inspect(raw, label)
    assert first.wire == baseline[label] and first.source == "inspected"

    # poison one binary so the quarantine records it
    crash = FaultPlan([FaultSpec(
        hook="service.batch.worker", kind="raise", probability=1.0,
    )])
    with injected(crash):
        poisoned = client.inspect(bad_raw, bad_label)
    assert poisoned.report is None
    client.close()

    cache_len = len(daemon.cache)
    quarantined = len(daemon.inspector.quarantine)
    submits = daemon.metrics.get("requests.SUBMIT")
    built = daemon.pool.stats()["built"]
    assert cache_len >= 1 and quarantined == 1

    daemon.stop()
    assert not daemon.accepting
    daemon.start()
    assert daemon.accepting

    # same objects, same contents — nothing was rebuilt or wiped
    assert len(daemon.cache) == cache_len
    assert len(daemon.inspector.quarantine) == quarantined
    assert daemon.metrics.get("requests.SUBMIT") == submits

    client2 = daemon_client(daemon, all_policies)
    # the cached verdict is served from the warm cache...
    again = client2.inspect(raw, label)
    assert again.wire == baseline[label]
    assert again.source == "cache"
    # ...and the quarantined binary is still refused, typed
    still_bad = client2.inspect(bad_raw, bad_label)
    assert still_bad.report is None
    assert "quarantined" in still_bad.error.lower()
    client2.close()
    # the pool was reused, not rebuilt
    assert daemon.pool.stats()["built"] == built
    daemon.stop()


def test_restart_same_object_supports_tcp_again(all_policies, corpus, baseline):
    from repro.net import connect_tcp
    from repro.service import InspectionClient, device_key_from_announce

    daemon = small_daemon(all_policies)
    host, port = daemon.start_tcp()
    announce = daemon.announce()
    daemon.stop()
    host2, port2 = daemon.start_tcp()
    try:
        key = device_key_from_announce(announce)  # device key is stable
        client = InspectionClient(
            all_policies, key, lambda: connect_tcp(host2, port2), timeout=5.0,
        )
        label, raw = corpus[0]
        verdict = client.inspect(raw, label)
        assert verdict.wire == baseline[label]
        client.close()
    finally:
        daemon.stop()


def test_double_start_and_double_stop_are_idempotent(all_policies):
    daemon = small_daemon(all_policies)
    daemon.start()
    daemon.start()
    daemon.stop()
    daemon.stop()
    assert not daemon.accepting
