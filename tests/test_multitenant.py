"""Multiple tenants on one provider machine: isolation and accounting."""

from __future__ import annotations

import pytest

from repro.core import EnclaveClient, provision
from repro.errors import SgxError
from repro.net import SocketPair
from tests.conftest import compile_demo, small_provider


class TestSequentialTenants:
    def test_many_tenants_one_provider(self, libc, all_policies):
        """One provider machine provisions several tenants in turn; each
        gets its own sealed enclave and the EPC accounting balances."""
        provider = small_provider(all_policies)
        runtimes = []
        for i in range(3):
            binary = compile_demo(libc, stack_protector=True, ifcc=True,
                                  name=f"tenant{i}")
            client = EnclaveClient(binary.elf, policies=all_policies,
                                   benchmark=f"tenant{i}")
            result = provision(provider, client)
            assert result.accepted
            runtimes.append(result.runtime)
        eids = {rt.enclave.eid for rt in runtimes}
        assert len(eids) == 3
        assert all(rt.enclave.sealed for rt in runtimes)

    def test_rejected_tenant_frees_resources_for_the_next(self, libc,
                                                          all_policies):
        provider = small_provider(all_policies)
        bad = EnclaveClient(b"not an elf" * 100, policies=all_policies)
        assert not provision(provider, bad).accepted
        used_after_reject = provider.machine.epc.used_pages
        assert used_after_reject == 0

        good_binary = compile_demo(libc, stack_protector=True, ifcc=True,
                                   name="after-reject")
        good = EnclaveClient(good_binary.elf, policies=all_policies)
        assert provision(provider, good).accepted


class TestCrossTenantIsolation:
    @pytest.fixture()
    def two_tenants(self, libc, all_policies):
        provider = small_provider(all_policies)
        results = []
        for i in range(2):
            binary = compile_demo(libc, stack_protector=True, ifcc=True,
                                  name=f"iso{i}")
            client = EnclaveClient(binary.elf, policies=all_policies)
            result = provision(provider, client)
            assert result.accepted
            results.append(result)
        return provider, results

    def test_enclaves_cannot_read_each_other(self, two_tenants):
        provider, (a, b) = two_tenants
        enclave_a = a.runtime.enclave
        enclave_b = b.runtime.enclave
        # grab one of B's EPC pages and try to decrypt it as A
        page_b = next(iter(enclave_b.pages.values()))
        with pytest.raises(SgxError):
            provider.machine.epc.read_plaintext(page_b, eid=enclave_a.eid)

    def test_interleaved_sessions(self, libc, all_policies):
        """Two provisioning sessions in flight at once on one machine."""
        provider = small_provider(all_policies)
        binary_a = compile_demo(libc, stack_protector=True, ifcc=True, name="ia")
        binary_b = compile_demo(libc, stack_protector=True, ifcc=True, name="ib")

        pair_a, pair_b = SocketPair(), SocketPair()
        session_a = provider.start_session(pair_a.right, benchmark="a")
        session_b = provider.start_session(pair_b.right, benchmark="b")

        client_a = EnclaveClient(binary_a.elf, policies=all_policies)
        client_b = EnclaveClient(binary_b.elf, policies=all_policies)
        for client, session, pair in ((client_a, session_a, pair_a),
                                      (client_b, session_b, pair_b)):
            challenge = client.challenge()
            quote = provider.attest(session, challenge)
            fp = client.verify_attestation(
                quote, provider.quoting_enclave.device_public_key, challenge,
                heap_pages=provider.heap_pages,
                client_pages=provider.client_pages,
                enclave_pages=provider.enclave_pages,
            )
            client.open_channel(pair.left, fp)
            client.send_content()

        # complete B first, then A — order independence
        report_b = provider.run_engarde(session_b)
        report_a = provider.run_engarde(session_a)
        assert report_a.compliant and report_b.compliant
        assert provider.finalize(session_b)
        assert provider.finalize(session_a)
        assert session_a.runtime.enclave.eid != session_b.runtime.enclave.eid

    def test_channel_keys_differ_across_sessions(self, libc, all_policies):
        provider = small_provider(all_policies)
        pair_a, pair_b = SocketPair(), SocketPair()
        sa = provider.start_session(pair_a.right)
        sb = provider.start_session(pair_b.right)
        ka = sa.handshake._keypair.public_key.fingerprint()
        kb = sb.handshake._keypair.public_key.fingerprint()
        assert ka != kb
