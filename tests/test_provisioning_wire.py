"""Wire-identity regression: the provisioning transcript is frozen bytes.

The crypto overhaul promises that every byte crossing the simulated
socket — handshake messages, encrypted content records, the verdict
record — is unchanged.  This test records the complete frame sequence of
one deterministic provisioning run (seeded DRBGs, deterministic
toolchain build) and pins its digest in
``tests/fixtures/provisioning_wire.json``; it also replays the run with
the reference-mode channel (``optimized=False`` on both endpoints) and
demands the *same* transcript, so the two record-layer implementations
can never drift apart on the wire.

Regenerate deliberately after an intended protocol change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_provisioning_wire.py
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.core import EnclaveClient, provision
from repro.net import sock as sock_module
from tests.conftest import small_provider

FIXTURE = Path(__file__).parent / "fixtures" / "provisioning_wire.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


def _record_transcript(monkeypatch, *, optimized: bool, policies, binary):
    """One full provisioning run with every socket frame recorded."""
    frames: list[tuple[str, bytes]] = []
    original_send = sock_module.SimSocket.send

    def recording_send(self, message):
        frames.append((self.name, bytes(message)))
        return original_send(self, message)

    monkeypatch.setattr(sock_module.SimSocket, "send", recording_send)
    provider = small_provider(policies, channel_optimized=optimized)
    client = EnclaveClient(binary, policies=policies, optimized=optimized)
    result = provision(provider, client)
    monkeypatch.undo()
    return frames, result


def _digest(frames) -> dict:
    h = hashlib.sha256()
    total = 0
    for name, frame in frames:
        h.update(name.encode())
        h.update(len(frame).to_bytes(4, "big"))
        h.update(frame)
        total += len(frame)
    return {
        "transcript_sha256": h.hexdigest(),
        "frames": len(frames),
        "bytes": total,
    }


@pytest.fixture(scope="module")
def transcripts(all_policies, demo_instrumented):
    """Both runs, recorded once for the module."""
    mp = pytest.MonkeyPatch()
    try:
        fast = _record_transcript(
            mp, optimized=True,
            policies=all_policies, binary=demo_instrumented.elf,
        )
        ref = _record_transcript(
            mp, optimized=False,
            policies=all_policies, binary=demo_instrumented.elf,
        )
    finally:
        mp.undo()
    return fast, ref


def test_optimized_and_reference_transcripts_are_byte_identical(transcripts):
    (fast_frames, fast_result), (ref_frames, ref_result) = transcripts
    assert fast_frames == ref_frames
    assert fast_result.accepted and ref_result.accepted
    assert fast_result.report == ref_result.report
    assert fast_result.client_verdict == ref_result.client_verdict


def test_transcript_matches_frozen_fixture(transcripts, all_policies,
                                           demo_instrumented):
    (fast_frames, fast_result), _ = transcripts
    observed = _digest(fast_frames)
    observed["verdict_sha256"] = hashlib.sha256(
        fast_result.report.serialize()
    ).hexdigest()

    if REGEN or not FIXTURE.exists():
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(observed, indent=2) + "\n")
        if not REGEN:
            pytest.skip("fixture created; rerun to verify")

    frozen = json.loads(FIXTURE.read_text())
    assert observed == frozen, (
        "provisioning wire transcript drifted from the frozen fixture; "
        "if the protocol change is intended, regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
