"""Deeper interpreter semantics: the loaded-binary instruction mix.

Complements test_x86_interp.py with the forms the toolchain's generated
bodies actually contain (movsxd, leave, neg/not, mem-operand ALU), plus
differential checks of flag semantics against Python ground truth.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86 import Assembler, Enc, Mem, RAX, RBP, RCX, RDX, RSP
from repro.x86.interp import ExecutionFault, Interpreter

from tests.test_x86_interp import CODE_BASE, STACK_TOP, FlatMemory, run_asm

_M64 = (1 << 64) - 1


class TestWiderSemantics:
    def test_movsxd_sign_extends(self):
        def build(a):
            a.mov_imm(0xFFFFFFFF, RCX.as_bits(32))  # ecx = -1 (32-bit)
            a.raw(Enc.movsxd(RCX.as_bits(32), RAX), 1)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == _M64  # sign-extended to 64-bit -1

    def test_leave_unwinds_frame(self):
        def build(a):
            a.push(RBP)
            a.mov_rr(RSP, RBP)
            a.alu_imm("sub", 64, RSP)
            a.mov_imm(0xABCD, RAX)
            a.leave()
            a.ret()

        state, interp, _ = run_asm(build)
        assert state.regs[0] == 0xABCD
        assert state.rsp == STACK_TOP + 8  # frame fully unwound + ret

    def test_neg_not(self):
        def build(a):
            a.mov_imm(5, RAX)
            a.unary("neg", RAX)
            a.mov_imm(0, RCX)
            a.unary("not", RCX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == (-5) & _M64
        assert state.regs[1] == _M64

    def test_alu_memory_destination(self):
        def build(a):
            a.mov_imm(100, RAX)
            a.mov_store(RAX, Mem(base=RSP, disp=-32))
            a.mov_imm(11, RCX)
            a.alu_store("add", RCX, Mem(base=RSP, disp=-32))
            a.mov_load(Mem(base=RSP, disp=-32), RDX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[2] == 111

    def test_alu_memory_source(self):
        def build(a):
            a.mov_imm(7, RAX)
            a.mov_store(RAX, Mem(base=RSP, disp=-8))
            a.mov_imm(3, RCX)
            a.alu_load("sub", Mem(base=RSP, disp=-8), RCX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[1] == (3 - 7) & _M64

    def test_imm_store_and_inc_dec_memory(self):
        def build(a):
            a.mov_imm_store(41, Mem(base=RSP, disp=-16))
            a.raw(Enc.incdec("inc", Mem(base=RSP, disp=-16)), 1)
            a.mov_load(Mem(base=RSP, disp=-16), RAX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 42


@given(st.integers(-(1 << 31), (1 << 31) - 1),
       st.integers(-(1 << 31), (1 << 31) - 1))
@settings(max_examples=120, deadline=None)
def test_sub_flags_match_ground_truth(a_val, b_val):
    """cmp sets flags so every signed/unsigned Jcc agrees with Python."""

    def build(asm):
        asm.mov_imm(a_val, RAX)
        asm.mov_imm(b_val, RCX)
        asm.alu_rr("cmp", RCX, RAX)  # flags from RAX - RCX
        asm.ret()

    state, _, _ = run_asm(build)
    ua, ub = a_val & _M64, b_val & _M64
    assert state.zf == (a_val == b_val)
    assert state.cf == (ua < ub)                   # unsigned borrow
    # signed comparison through SF != OF
    assert (state.sf != state.of) == (a_val < b_val)


@given(st.integers(0, _M64), st.integers(0, _M64))
@settings(max_examples=120, deadline=None)
def test_add_matches_ground_truth(a_val, b_val):
    def build(asm):
        asm.mov_imm(a_val - (1 << 64) if a_val >= (1 << 63) else a_val, RAX)
        asm.mov_imm(b_val - (1 << 64) if b_val >= (1 << 63) else b_val, RCX)
        asm.alu_rr("add", RCX, RAX)
        asm.ret()

    state, _, _ = run_asm(build)
    assert state.regs[0] == (a_val + b_val) & _M64
    assert state.cf == (a_val + b_val > _M64)
    assert state.zf == ((a_val + b_val) & _M64 == 0)


@given(st.lists(st.integers(0, 6), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_random_straightline_programs_terminate(ops):
    """Any straight-line program from the generator op-set executes to
    completion (no faults, exact instruction count)."""

    def build(asm):
        count = 0
        for op in ops:
            if op == 0:
                asm.mov_imm(op * 7 + 1, RAX)
            elif op == 1:
                asm.alu_rr("xor", RCX, RAX)
            elif op == 2:
                asm.mov_store(RAX, Mem(base=RSP, disp=-24))
            elif op == 3:
                asm.mov_load(Mem(base=RSP, disp=-24), RCX)
            elif op == 4:
                asm.alu_imm("and", 0xFF, RAX)
            elif op == 5:
                asm.imul_rr(RCX, RAX)
            else:
                asm.shift_imm("shr", 3, RAX)
        asm.ret()

    state, interp, _ = run_asm(build, fuel=1000)
    assert interp.executed == len(ops) + 1  # + ret


class TestBusEdge:
    def test_fetch_window_shrinks_at_region_end(self):
        # a 1-byte ret at the very end of RAM must still fetch+execute
        mem = FlatMemory(size=CODE_BASE + 1)
        mem.write(CODE_BASE, Enc.ret())
        interp = Interpreter(mem, fuel=10)
        from repro.x86.interp import HaltExecution

        # stack must exist: place it below the code in this tiny RAM
        with pytest.raises(ExecutionFault):
            interp.run(CODE_BASE, CODE_BASE + 100)  # stack oob -> clean fault


class TestCmovXchg:
    def test_cmov_taken_and_not_taken(self):
        def build(a):
            a.mov_imm(1, RAX)
            a.mov_imm(99, RCX)
            a.alu_imm("cmp", 1, RAX)            # ZF=1
            a.raw(Enc.cmov("e", RCX, RDX), 1)   # taken
            a.alu_imm("cmp", 2, RAX)            # ZF=0
            a.mov_imm(7, RCX)
            a.raw(Enc.cmov("e", RCX, RAX), 1)   # not taken
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[2] == 99
        assert state.regs[0] == 1  # unchanged

    def test_xchg_swaps(self):
        def build(a):
            a.mov_imm(5, RAX)
            a.mov_imm(9, RCX)
            a.raw(Enc.xchg_rr(RAX, RCX), 1)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 9 and state.regs[1] == 5

    def test_xchg_with_memory(self):
        def build(a):
            a.mov_imm(0x11, RAX)
            a.mov_imm_store(0x22, Mem(base=RSP, disp=-8))
            a.raw(Enc.xchg_rm(RAX, Mem(base=RSP, disp=-8)), 1)
            a.mov_load(Mem(base=RSP, disp=-8), RCX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 0x22 and state.regs[1] == 0x11
