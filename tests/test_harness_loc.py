"""Figure 2 inventory and the harness glue."""

from __future__ import annotations

from pathlib import Path

from repro.harness.loc import (
    COMPONENTS,
    EXTRA_COMPONENTS,
    PAPER_LOC,
    PAPER_TOTAL,
    component_loc,
    render_loc_table,
)


def test_every_referenced_module_exists():
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    for _name, (_paper, paths) in COMPONENTS.items():
        for p in paths:
            assert (src / p).is_file(), p
    for _name, paths in EXTRA_COMPONENTS.items():
        for p in paths:
            assert (src / p).is_file(), p


def test_paper_numbers_match_figure2():
    assert PAPER_LOC["Code Provisioning"] == 270
    assert PAPER_LOC["Loading and Relocating"] == 188
    assert PAPER_LOC["Musl-libc"] == 90_728
    assert PAPER_LOC["Lib crypto (openssl)"] == 287_985
    assert PAPER_LOC["Lib ssl (openssl)"] == 63_566
    assert PAPER_TOTAL == 453_349


def test_loc_counts_positive_and_stable():
    a = component_loc()
    b = component_loc()
    assert a == b
    assert all(ours > 0 for _p, ours in a.values())


def test_render_contains_all_components():
    table = render_loc_table()
    for name in COMPONENTS:
        assert name in table
    assert "Total" in table
