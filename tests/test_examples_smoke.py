"""Smoke tests: the runnable examples must stay runnable."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc.stdout


@pytest.mark.slow
def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "verdict: ACCEPTED" in out
    assert "library-linking: compliant" in out
    assert "enclave sealed: True" in out


@pytest.mark.slow
def test_custom_policy_example():
    out = run_example("custom_policy.py")
    assert "clean client" in out and "ACCEPT" in out
    assert "OS services" in out
    assert "size budget" in out


@pytest.mark.slow
def test_runtime_protection_example():
    out = run_example("runtime_protection_demo.py")
    assert "STACK-SMASH" in out
    assert "without IFCC: fault" in out
    assert "with IFCC   : returned" in out
    assert "blocked" in out


@pytest.mark.slow
def test_attestation_walkthrough_example():
    out = run_example("attestation_walkthrough.py")
    assert out.count("caught:") == 3
    assert "identical" in out


@pytest.mark.slow
def test_sla_audit_example():
    out = run_example("sla_compliance_audit.py")
    assert "1/5 tenants admitted" in out
    assert out.count("reject") >= 4
