"""Host OS: enclave building, trampoline services, EnGarde protections."""

from __future__ import annotations

import pytest

from repro.errors import EnclaveSealedError, SgxError
from repro.net import SocketPair
from repro.sgx import HostOS, SgxMachine, SgxParams
from repro.sgx.params import PAGE_SIZE

BASE = 0x10000


@pytest.fixture()
def host():
    return HostOS(SgxMachine(SgxParams(epc_pages=256, heap_initial_pages=8)))


@pytest.fixture()
def runtime(host):
    return host.build_enclave(
        base=BASE,
        size=0x400000,
        bootstrap_pages={BASE: b"ENGARDE", BASE + PAGE_SIZE: b"LIBS"},
        client_pages=8,
    )


class TestBuild:
    def test_layout(self, runtime):
        assert runtime.client_base > BASE + PAGE_SIZE
        assert runtime.client_base % PAGE_SIZE == 0
        assert runtime.heap_base == runtime.client_base + 8 * PAGE_SIZE
        assert runtime.heap_pages == 8
        assert runtime.enclave.page_count == 2 + 8 + 8

    def test_client_region_starts_rwx(self, runtime):
        page = runtime.enclave.pages[runtime.client_base]
        assert page.perms.as_str() == "rwx"

    def test_heap_starts_rw(self, runtime):
        page = runtime.enclave.pages[runtime.heap_base]
        assert page.perms.as_str() == "rw-"

    def test_oversized_heap_rejected(self, host):
        with pytest.raises(SgxError):
            host.build_enclave(
                base=BASE, size=4 * PAGE_SIZE,
                bootstrap_pages={BASE: b"x"}, heap_pages=100,
            )

    def test_build_is_measured(self, host):
        a = host.build_enclave(
            base=BASE, size=0x100000, bootstrap_pages={BASE: b"v1"}, heap_pages=2
        )
        b = host.build_enclave(
            base=BASE, size=0x100000, bootstrap_pages={BASE: b"v2"}, heap_pages=2
        )
        assert a.enclave.mrenclave != b.enclave.mrenclave


class TestTrampoline:
    def test_alloc_from_precommitted_heap(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        base = host.svc_alloc_pages(runtime, 2)
        assert base == runtime.heap_base
        assert runtime.heap_used_pages == 2
        assert runtime.trampoline_calls == 1
        runtime.enclave.write(base, b"heap data")

    def test_alloc_grows_via_eaug(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        host.svc_alloc_pages(runtime, 8)   # exhausts pre-commit
        before = host.machine.meter.sgx_instruction_count
        base = host.svc_alloc_pages(runtime, 3)  # 3 EAUGs + trampoline
        after = host.machine.meter.sgx_instruction_count
        assert after - before == 2 + 3
        runtime.enclave.write(base + 2 * PAGE_SIZE, b"grown")

    def test_trampoline_costs_two_sgx_instructions(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        before = host.machine.meter.sgx_instruction_count
        host.trampoline(runtime)
        assert host.machine.meter.sgx_instruction_count == before + 2

    def test_alloc_zero_rejected(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        with pytest.raises(SgxError):
            host.svc_alloc_pages(runtime, 0)

    def test_socket_services(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        pair = SocketPair()
        fd = host.svc_socket(runtime, pair.right)
        pair.left.send(b"from client")
        assert host.svc_recv(runtime, fd) == b"from client"
        host.svc_send(runtime, fd, b"reply")
        assert pair.left.recv() == b"reply"
        with pytest.raises(SgxError):
            host.svc_send(runtime, 99, b"bad fd")


class TestEngardeProtections:
    def test_wx_separation(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        code_page = runtime.client_base
        data_page = runtime.client_base + PAGE_SIZE
        runtime.enclave.write(code_page, b"\x90" * 8)
        runtime.enclave.write(data_page, b"DATA")

        host.apply_engarde_protections(runtime, [code_page])

        assert runtime.enclave.fetch_code(code_page, 4) == b"\x90" * 4
        with pytest.raises(SgxError):
            runtime.enclave.write(code_page, b"inject")
        runtime.enclave.write(data_page, b"data still writable")
        with pytest.raises(SgxError):
            runtime.enclave.fetch_code(data_page, 4)

    def test_page_table_mirrors_epcm(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        code_page = runtime.client_base
        host.apply_engarde_protections(runtime, [code_page])
        pte = runtime.page_table[code_page]
        assert pte.execute and not pte.write
        data_pte = runtime.page_table[runtime.client_base + PAGE_SIZE]
        assert data_pte.write and not data_pte.execute

    def test_seals_enclave(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        host.apply_engarde_protections(runtime, [runtime.client_base])
        assert runtime.enclave.sealed
        with pytest.raises(EnclaveSealedError):
            host.svc_alloc_pages(runtime, 1000)

    def test_unmapped_exec_page_rejected(self, host, runtime):
        with pytest.raises(SgxError):
            host.apply_engarde_protections(runtime, [0xDEAD000])

    def test_unaligned_exec_page_rejected(self, host, runtime):
        with pytest.raises(SgxError):
            host.apply_engarde_protections(runtime, [runtime.client_base + 1])

    def test_sgx1_fallback_is_software_only(self):
        # On SGX1 the EPC permissions cannot change: only the (attackable)
        # page-table bits are updated.  This is the paper's argument for
        # requiring SGX2.
        host = HostOS(SgxMachine(SgxParams(epc_pages=64, heap_initial_pages=2,
                                           sgx2=False)))
        runtime = host.build_enclave(
            base=BASE, size=0x100000, bootstrap_pages={BASE: b"x"},
            client_pages=2,
        )
        host.machine.eenter(runtime.enclave)
        host.apply_engarde_protections(runtime, [runtime.client_base])
        # PTE says no-write, but the EPCM still allows it: a malicious OS
        # could flip the PTE back.  The write going through demonstrates
        # the SGX1 weakness.
        runtime.enclave.write(runtime.client_base, b"sgx1 attack window")


class TestConfidentiality:
    def test_host_sees_only_ciphertext(self, host, runtime):
        host.machine.eenter(runtime.enclave)
        secret = b"CLIENT SECRET CODE".ljust(64, b"!")
        runtime.enclave.write(runtime.client_base, secret)
        observed = host.peek_enclave_memory(runtime, runtime.client_base)
        assert secret not in observed
        assert observed != runtime.enclave.read(runtime.client_base, PAGE_SIZE)
