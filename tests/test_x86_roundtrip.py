"""Property-based encode->decode round-trip over the whole ISA subset."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86 import Enc, GPR32, GPR64, Imm, Mem, Reg, decode_one

regs64 = st.sampled_from(GPR64)
regs32 = st.sampled_from(GPR32)
# index register cannot be %rsp
index64 = st.sampled_from([r for r in GPR64 if r.num != 4])
alu_ops = st.sampled_from(["add", "or", "and", "sub", "xor", "cmp"])
disp8 = st.integers(-128, 127)
disp32 = st.integers(-(1 << 31), (1 << 31) - 1)


@st.composite
def memory_operands(draw):
    form = draw(st.integers(0, 4))
    seg = draw(st.sampled_from([None, None, None, "fs", "gs"]))
    if form == 0:
        return Mem(rip_relative=True, disp=draw(disp32), seg=None)
    if form == 1:
        return Mem(disp=draw(disp32), seg=seg)  # absolute
    if form == 2:
        return Mem(base=draw(regs64), disp=draw(disp32), seg=seg)
    if form == 3:
        return Mem(
            base=draw(regs64), index=draw(index64),
            scale=draw(st.sampled_from([1, 2, 4, 8])),
            disp=draw(disp8), seg=seg,
        )
    return Mem(
        index=draw(index64), scale=draw(st.sampled_from([1, 2, 4, 8])),
        disp=draw(disp32), seg=seg,
    )


def check(encoded: bytes, mnemonic: str, operands: tuple = None):
    insn = decode_one(encoded, 0)
    assert insn.raw == encoded
    assert insn.length == len(encoded)
    assert insn.mnemonic == mnemonic
    if operands is not None:
        assert insn.operands == operands
    return insn


@given(regs64, regs64)
@settings(max_examples=80, deadline=None)
def test_mov_rr(src, dst):
    check(Enc.mov_rr(src, dst), "mov", (src, dst))


@given(regs32, regs32)
@settings(max_examples=40, deadline=None)
def test_mov_rr_32(src, dst):
    check(Enc.mov_rr(src, dst), "mov", (src, dst))


@given(regs64, memory_operands())
@settings(max_examples=200, deadline=None)
def test_mov_store(src, mem):
    insn = check(Enc.mov_store(src, mem), "mov")
    decoded_src, decoded_mem = insn.operands
    assert decoded_src == src
    assert _mem_equal(decoded_mem, mem)


@given(memory_operands(), regs64)
@settings(max_examples=200, deadline=None)
def test_mov_load(mem, dst):
    insn = check(Enc.mov_load(mem, dst), "mov")
    decoded_mem, decoded_dst = insn.operands
    assert decoded_dst == dst
    assert _mem_equal(decoded_mem, mem)


@given(alu_ops, regs64, regs64)
@settings(max_examples=150, deadline=None)
def test_alu_rr(op, src, dst):
    check(Enc.alu_rr(op, src, dst), op, (src, dst))


@given(alu_ops, st.integers(-(1 << 31), (1 << 31) - 1), regs64)
@settings(max_examples=150, deadline=None)
def test_alu_imm(op, value, dst):
    insn = check(Enc.alu_imm(op, value, dst), op)
    imm, decoded_dst = insn.operands
    assert isinstance(imm, Imm) and imm.value == value
    assert decoded_dst == dst


@given(memory_operands(), regs64)
@settings(max_examples=100, deadline=None)
def test_lea(mem, dst):
    if mem.seg:  # lea refuses segment overrides
        return
    insn = check(Enc.lea(mem, dst), "lea")
    assert _mem_equal(insn.operands[0], mem)


@given(st.integers(-(1 << 63), (1 << 63) - 1), regs64)
@settings(max_examples=150, deadline=None)
def test_mov_imm64(value, dst):
    insn = check(Enc.mov_imm(value, dst), "mov")
    imm, decoded_dst = insn.operands
    assert imm.value == value
    assert decoded_dst == dst


@given(regs64)
@settings(max_examples=32, deadline=None)
def test_push_pop(reg):
    check(Enc.push(reg), "push", (reg,))
    check(Enc.pop(reg), "pop", (reg,))


@given(st.integers(-(1 << 31), (1 << 31) - 1))
@settings(max_examples=80, deadline=None)
def test_call_rel32(rel):
    insn = check(Enc.call_rel32(rel), "callq")
    assert insn.target == len(insn.raw) + rel


@given(st.sampled_from(["je", "jne", "jl", "jge", "ja", "jbe", "js", "jo"]),
       st.integers(-(1 << 31), (1 << 31) - 1))
@settings(max_examples=100, deadline=None)
def test_jcc_rel32(cond, rel):
    insn = check(Enc.jcc_rel32(cond, rel), cond)
    assert insn.target == len(insn.raw) + rel
    assert insn.is_conditional_branch


@given(st.sampled_from(["shl", "shr", "sar"]), st.integers(0, 63), regs64)
@settings(max_examples=80, deadline=None)
def test_shift(op, amount, dst)  :
    insn = check(Enc.shift_imm(op, amount, dst), op)
    assert insn.operands[0].value == amount


@given(regs64, regs64)
@settings(max_examples=60, deadline=None)
def test_imul(src, dst):
    check(Enc.imul_rr(src, dst), "imul", (src, dst))


@given(regs64)
@settings(max_examples=32, deadline=None)
def test_indirect_call_jmp(reg):
    insn = check(Enc.call_rm(reg), "callq", (reg,))
    assert insn.is_indirect_call
    insn = check(Enc.jmp_rm(reg), "jmpq", (reg,))
    assert insn.is_indirect_jump


def _mem_equal(decoded: Mem, original: Mem) -> bool:
    """Encoding may canonicalise (e.g. scale-1 index-only), so compare the
    addressing semantics rather than the dataclass fields blindly."""
    if decoded.rip_relative != original.rip_relative:
        return False
    if decoded.seg != original.seg or decoded.disp != original.disp:
        return False
    base_num = original.base.num if original.base else None
    dec_base = decoded.base.num if decoded.base else None
    if base_num != dec_base:
        return False
    idx_num = original.index.num if original.index else None
    dec_idx = decoded.index.num if decoded.index else None
    if idx_num != dec_idx:
        return False
    if original.index is not None and decoded.scale != original.scale:
        return False
    return True


# ---------------------------------------------------------------------------
# Differential sequence fuzz (PR 1): random *sequences* of encoder output
# must decode back byte-identically, re-encode byte-identically from the
# decoded operands, and produce the same validator verdict however many
# times the stream is decoded or the decoded buffer is reused.
# ---------------------------------------------------------------------------

from repro.x86 import decode_all, validate
from repro.errors import ValidationError


@st.composite
def encoded_instructions(draw):
    """One encoder call: (encoded bytes, re-encode from a decoded insn)."""
    kind = draw(st.integers(0, 7))
    if kind == 0:
        src, dst = draw(regs64), draw(regs64)
        return Enc.mov_rr(src, dst), lambda i: Enc.mov_rr(*i.operands)
    if kind == 1:
        op, src, dst = draw(alu_ops), draw(regs64), draw(regs64)
        return Enc.alu_rr(op, src, dst), lambda i: Enc.alu_rr(
            i.mnemonic, *i.operands
        )
    if kind == 2:
        op, value, dst = draw(alu_ops), draw(disp32), draw(regs64)
        return Enc.alu_imm(op, value, dst), lambda i: Enc.alu_imm(
            i.mnemonic, i.operands[0].value, i.operands[1]
        )
    if kind == 3:
        reg = draw(regs64)
        if draw(st.booleans()):
            return Enc.push(reg), lambda i: Enc.push(*i.operands)
        return Enc.pop(reg), lambda i: Enc.pop(*i.operands)
    if kind == 4:
        value, dst = draw(st.integers(-(1 << 63), (1 << 63) - 1)), draw(regs64)
        return Enc.mov_imm(value, dst), lambda i: Enc.mov_imm(
            i.operands[0].value, i.operands[1]
        )
    if kind == 5:
        src, mem = draw(regs64), draw(memory_operands())
        return Enc.mov_store(src, mem), lambda i: Enc.mov_store(*i.operands)
    if kind == 6:
        op = draw(st.sampled_from(["shl", "shr", "sar"]))
        amount, dst = draw(st.integers(0, 63)), draw(regs64)
        return Enc.shift_imm(op, amount, dst), lambda i: Enc.shift_imm(
            i.mnemonic, i.operands[0].value, i.operands[1]
        )
    rel = draw(disp32)
    return Enc.call_rel32(rel), lambda i: Enc.call_rel32(i.target - i.end)


@given(st.lists(encoded_instructions(), min_size=1, max_size=24))
@settings(max_examples=150, deadline=None)
def test_sequence_decode_reencode_roundtrip(seq):
    blob = b"".join(encoded for encoded, _ in seq)
    insns = decode_all(blob)
    assert len(insns) == len(seq)
    offset = 0
    for insn, (encoded, reencode) in zip(insns, seq):
        assert insn.offset == offset
        assert insn.raw == encoded
        # encoder(decoder(bytes)) is the identity on the wire
        assert reencode(insn) == encoded
        offset += len(encoded)
    assert offset == len(blob)


def _verdict(insns, entry, roots):
    try:
        validate(insns, entry=entry, roots=roots)
        return None
    except ValidationError as exc:
        return str(exc)


@given(st.lists(encoded_instructions(), min_size=1, max_size=16))
@settings(max_examples=100, deadline=None)
def test_validator_verdict_stable_across_decodes(seq):
    """A fresh decode and a cached (reused) decode of the same bytes must
    yield the same instructions and the same validator verdict — the
    invariant the service layer's verdict cache rests on."""
    blob = b"".join(encoded for encoded, _ in seq)
    fresh, cached = decode_all(blob), decode_all(blob)
    assert fresh == cached
    first = _verdict(fresh, fresh[0].offset, [i.offset for i in fresh])
    again = _verdict(fresh, fresh[0].offset, [i.offset for i in fresh])
    other = _verdict(cached, cached[0].offset, [i.offset for i in cached])
    assert first == again        # validation does not mutate its input
    assert first == other        # nor depend on which decode it sees
    # and the decoded buffer is still byte-faithful after validation
    assert b"".join(i.raw for i in fresh) == blob
