"""Property-based encode->decode round-trip over the whole ISA subset."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86 import Enc, GPR32, GPR64, Imm, Mem, Reg, decode_one

regs64 = st.sampled_from(GPR64)
regs32 = st.sampled_from(GPR32)
# index register cannot be %rsp
index64 = st.sampled_from([r for r in GPR64 if r.num != 4])
alu_ops = st.sampled_from(["add", "or", "and", "sub", "xor", "cmp"])
disp8 = st.integers(-128, 127)
disp32 = st.integers(-(1 << 31), (1 << 31) - 1)


@st.composite
def memory_operands(draw):
    form = draw(st.integers(0, 4))
    seg = draw(st.sampled_from([None, None, None, "fs", "gs"]))
    if form == 0:
        return Mem(rip_relative=True, disp=draw(disp32), seg=None)
    if form == 1:
        return Mem(disp=draw(disp32), seg=seg)  # absolute
    if form == 2:
        return Mem(base=draw(regs64), disp=draw(disp32), seg=seg)
    if form == 3:
        return Mem(
            base=draw(regs64), index=draw(index64),
            scale=draw(st.sampled_from([1, 2, 4, 8])),
            disp=draw(disp8), seg=seg,
        )
    return Mem(
        index=draw(index64), scale=draw(st.sampled_from([1, 2, 4, 8])),
        disp=draw(disp32), seg=seg,
    )


def check(encoded: bytes, mnemonic: str, operands: tuple = None):
    insn = decode_one(encoded, 0)
    assert insn.raw == encoded
    assert insn.length == len(encoded)
    assert insn.mnemonic == mnemonic
    if operands is not None:
        assert insn.operands == operands
    return insn


@given(regs64, regs64)
@settings(max_examples=80, deadline=None)
def test_mov_rr(src, dst):
    check(Enc.mov_rr(src, dst), "mov", (src, dst))


@given(regs32, regs32)
@settings(max_examples=40, deadline=None)
def test_mov_rr_32(src, dst):
    check(Enc.mov_rr(src, dst), "mov", (src, dst))


@given(regs64, memory_operands())
@settings(max_examples=200, deadline=None)
def test_mov_store(src, mem):
    insn = check(Enc.mov_store(src, mem), "mov")
    decoded_src, decoded_mem = insn.operands
    assert decoded_src == src
    assert _mem_equal(decoded_mem, mem)


@given(memory_operands(), regs64)
@settings(max_examples=200, deadline=None)
def test_mov_load(mem, dst):
    insn = check(Enc.mov_load(mem, dst), "mov")
    decoded_mem, decoded_dst = insn.operands
    assert decoded_dst == dst
    assert _mem_equal(decoded_mem, mem)


@given(alu_ops, regs64, regs64)
@settings(max_examples=150, deadline=None)
def test_alu_rr(op, src, dst):
    check(Enc.alu_rr(op, src, dst), op, (src, dst))


@given(alu_ops, st.integers(-(1 << 31), (1 << 31) - 1), regs64)
@settings(max_examples=150, deadline=None)
def test_alu_imm(op, value, dst):
    insn = check(Enc.alu_imm(op, value, dst), op)
    imm, decoded_dst = insn.operands
    assert isinstance(imm, Imm) and imm.value == value
    assert decoded_dst == dst


@given(memory_operands(), regs64)
@settings(max_examples=100, deadline=None)
def test_lea(mem, dst):
    if mem.seg:  # lea refuses segment overrides
        return
    insn = check(Enc.lea(mem, dst), "lea")
    assert _mem_equal(insn.operands[0], mem)


@given(st.integers(-(1 << 63), (1 << 63) - 1), regs64)
@settings(max_examples=150, deadline=None)
def test_mov_imm64(value, dst):
    insn = check(Enc.mov_imm(value, dst), "mov")
    imm, decoded_dst = insn.operands
    assert imm.value == value
    assert decoded_dst == dst


@given(regs64)
@settings(max_examples=32, deadline=None)
def test_push_pop(reg):
    check(Enc.push(reg), "push", (reg,))
    check(Enc.pop(reg), "pop", (reg,))


@given(st.integers(-(1 << 31), (1 << 31) - 1))
@settings(max_examples=80, deadline=None)
def test_call_rel32(rel):
    insn = check(Enc.call_rel32(rel), "callq")
    assert insn.target == len(insn.raw) + rel


@given(st.sampled_from(["je", "jne", "jl", "jge", "ja", "jbe", "js", "jo"]),
       st.integers(-(1 << 31), (1 << 31) - 1))
@settings(max_examples=100, deadline=None)
def test_jcc_rel32(cond, rel):
    insn = check(Enc.jcc_rel32(cond, rel), cond)
    assert insn.target == len(insn.raw) + rel
    assert insn.is_conditional_branch


@given(st.sampled_from(["shl", "shr", "sar"]), st.integers(0, 63), regs64)
@settings(max_examples=80, deadline=None)
def test_shift(op, amount, dst)  :
    insn = check(Enc.shift_imm(op, amount, dst), op)
    assert insn.operands[0].value == amount


@given(regs64, regs64)
@settings(max_examples=60, deadline=None)
def test_imul(src, dst):
    check(Enc.imul_rr(src, dst), "imul", (src, dst))


@given(regs64)
@settings(max_examples=32, deadline=None)
def test_indirect_call_jmp(reg):
    insn = check(Enc.call_rm(reg), "callq", (reg,))
    assert insn.is_indirect_call
    insn = check(Enc.jmp_rm(reg), "jmpq", (reg,))
    assert insn.is_indirect_jump


def _mem_equal(decoded: Mem, original: Mem) -> bool:
    """Encoding may canonicalise (e.g. scale-1 index-only), so compare the
    addressing semantics rather than the dataclass fields blindly."""
    if decoded.rip_relative != original.rip_relative:
        return False
    if decoded.seg != original.seg or decoded.disp != original.disp:
        return False
    base_num = original.base.num if original.base else None
    dec_base = decoded.base.num if decoded.base else None
    if base_num != dec_base:
        return False
    idx_num = original.index.num if original.index else None
    dec_idx = decoded.index.num if decoded.index else None
    if idx_num != dec_idx:
        return False
    if original.index is not None and decoded.scale != original.scale:
        return False
    return True
