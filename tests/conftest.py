"""Shared fixtures: a session-scoped libc build and small demo programs.

The libc build and compiled demo binaries are deterministic and somewhat
expensive, so they are built once per session.  SGX machines in tests use
deliberately small EPC/heap sizes — behaviour, not capacity, is under test.
"""

from __future__ import annotations

import pytest

from repro.core import (
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)
from repro.sgx import SgxParams
from repro.toolchain import (
    Compiler,
    CompilerFlags,
    DataObject,
    FunctionSpec,
    ProgramSpec,
    build_libc,
    link,
)


@pytest.fixture(scope="session")
def libc():
    return build_libc()


@pytest.fixture(scope="session")
def libc_old():
    """A different library version: every function hash differs."""
    return build_libc("1.0.4")


def make_demo_spec(name: str = "demo") -> ProgramSpec:
    """A small three-function program exercising every feature the
    policies look at: libc calls, client-to-client calls, an indirect
    call, and address-taken functions."""
    return ProgramSpec(
        name=name,
        functions=[
            FunctionSpec(
                "main", n_blocks=4,
                direct_calls=["helper", "memcpy", "printf"],
                indirect_calls=1,
            ),
            FunctionSpec(
                "helper", n_blocks=2, direct_calls=["strlen"],
                address_taken=True,
            ),
            FunctionSpec("callback", n_blocks=1, address_taken=True),
        ],
        libc_imports=["memcpy", "printf", "strlen"],
        data_objects=[DataObject("globals", 64, init=b"hello")],
    )


@pytest.fixture(scope="session")
def demo_spec():
    return make_demo_spec()


def compile_demo(libc, *, stack_protector=False, ifcc=False, name="demo"):
    flags = CompilerFlags(stack_protector=stack_protector, ifcc=ifcc)
    return link(Compiler(flags).compile(make_demo_spec(name)), libc)


@pytest.fixture(scope="session")
def demo_plain(libc):
    return compile_demo(libc)


@pytest.fixture(scope="session")
def demo_instrumented(libc):
    """Fully instrumented: passes all three paper policies."""
    return compile_demo(libc, stack_protector=True, ifcc=True)


@pytest.fixture(scope="session")
def all_policies(libc):
    return PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])


@pytest.fixture()
def small_params():
    """An SGX machine sized for tests (fast to build, still realistic)."""
    return SgxParams(epc_pages=4096, heap_initial_pages=64)


def small_provider(policies, **overrides):
    """A CloudProvider with test-friendly sizes."""
    from repro.core import CloudProvider

    defaults = dict(
        params=SgxParams(epc_pages=4096, heap_initial_pages=64),
        rsa_bits=768,
        client_pages=64,
        enclave_pages=0x2000,
    )
    defaults.update(overrides)
    return CloudProvider(policies, **defaults)


def small_daemon(policies, **overrides):
    """A started InspectionDaemon with test-friendly sizes.

    Same geometry as :func:`small_provider` so attestation-side numbers
    (MRENCLAVE inputs, RSA sizes) stay comparable across test suites.
    """
    from repro.service import InspectionDaemon

    defaults = dict(
        pool_size=1,
        rsa_bits=768,
        heap_pages=64,
        client_pages=64,
        enclave_pages=0x2000,
    )
    defaults.update(overrides)
    daemon = InspectionDaemon(policies, **defaults)
    daemon.start()
    return daemon


def daemon_client(daemon, policies, **overrides):
    """An InspectionClient wired to *daemon* over the in-proc transport."""
    from repro.service import InspectionClient

    defaults = dict(timeout=5.0)
    defaults.update(overrides)
    return InspectionClient(
        policies,
        daemon.pool.quoting_enclave.device_public_key,
        daemon.connect_inproc,
        **defaults,
    )
