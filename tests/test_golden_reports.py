"""Golden-corpus regression tests: frozen ELFs, frozen verdicts.

The fixtures under ``tests/fixtures/golden/`` are small binaries built by
``repro.toolchain`` and *checked in*, together with the exact
``ComplianceReport`` wire form each of the three paper policies produced
for them — and the policy *configuration* (libc hash database, exemption
list) frozen at the same moment.  Any change to policy behaviour, the
report boundary, or the rejection pipeline therefore shows up as a
readable diff against ``expected_reports.json`` instead of a silent
drift; toolchain changes do not trip it, because the binaries are frozen
bytes, not rebuilt.

Regenerate deliberately after an intended behaviour change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_reports.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core import (
    EnGarde,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)

FIXTURES = Path(__file__).parent / "fixtures" / "golden"
POLICY_NAMES = ("library-linking", "stack-protection", "indirect-function-call")
#: fixture name -> how it is produced at regeneration time
FIXTURE_BINARIES = ("instrumented", "plain", "truncated", "garbage")

REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


def _frozen_policy(name: str, config: dict):
    """Instantiate a policy from the *frozen* configuration — the current
    libc build must not influence golden verdicts."""
    if name == "library-linking":
        hashes = {
            fn: bytes.fromhex(digest)
            for fn, digest in config["reference_hashes"].items()
        }
        return LibraryLinkingPolicy(hashes)
    if name == "stack-protection":
        return StackProtectionPolicy(
            exempt_functions=set(config["exempt_functions"])
        )
    return IfccPolicy()


def _build_fixtures() -> None:
    """Regeneration path: build the binaries and freeze everything."""
    from repro.toolchain import build_libc
    from tests.conftest import compile_demo

    libc = build_libc()
    FIXTURES.mkdir(parents=True, exist_ok=True)
    instrumented = compile_demo(
        libc, stack_protector=True, ifcc=True, name="golden"
    ).elf
    plain = compile_demo(libc, name="golden").elf
    binaries = {
        "instrumented": instrumented,
        "plain": plain,
        # structural rejects: an ELF cut mid-image, and non-ELF bytes
        "truncated": instrumented[:128],
        "garbage": b"\x7fNOT-AN-ELF" + bytes(range(256)),
    }
    import hashlib

    for name, blob in binaries.items():
        (FIXTURES / f"{name}.bin").write_bytes(blob)
    (FIXTURES / "binary_digests.json").write_text(json.dumps(
        {n: hashlib.sha256(b).hexdigest() for n, b in binaries.items()},
        indent=1,
    ) + "\n")
    config = {
        "reference_hashes": {
            fn: digest.hex()
            for fn, digest in sorted(libc.reference_hashes().items())
        },
        "exempt_functions": sorted(set(libc.offsets)),
    }
    (FIXTURES / "policy_config.json").write_text(
        json.dumps(config, indent=1) + "\n"
    )
    expected: dict[str, dict[str, str]] = {}
    for name, blob in binaries.items():
        expected[name] = {}
        for policy_name in POLICY_NAMES:
            engarde = EnGarde(PolicyRegistry([
                _frozen_policy(policy_name, config)
            ]))
            report = engarde.inspect(blob, benchmark=name).report
            expected[name][policy_name] = report.serialize().decode()
    (FIXTURES / "expected_reports.json").write_text(
        json.dumps(expected, indent=1) + "\n"
    )


if REGEN:
    _build_fixtures()


@pytest.fixture(scope="module")
def golden():
    if not (FIXTURES / "expected_reports.json").is_file():
        pytest.fail(
            "golden fixtures missing — run with REPRO_REGEN_GOLDEN=1"
        )
    config = json.loads((FIXTURES / "policy_config.json").read_text())
    expected = json.loads((FIXTURES / "expected_reports.json").read_text())
    return config, expected


@pytest.mark.parametrize("fixture_name", FIXTURE_BINARIES)
@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_golden_report_is_unchanged(golden, fixture_name, policy_name):
    config, expected = golden
    blob = (FIXTURES / f"{fixture_name}.bin").read_bytes()
    engarde = EnGarde(PolicyRegistry([_frozen_policy(policy_name, config)]))
    report = engarde.inspect(blob, benchmark=fixture_name).report
    assert report.serialize().decode() == expected[fixture_name][policy_name], (
        "policy verdict drifted from the golden corpus — if intentional, "
        "regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_golden_corpus_covers_every_verdict_class(golden):
    """The frozen corpus must keep exercising accept, policy-reject, and
    structural-reject paths (guards against fixture rot)."""
    from repro.core import ComplianceReport

    _, expected = golden
    reports = [
        ComplianceReport.deserialize(wire.encode())
        for verdicts in expected.values()
        for wire in verdicts.values()
    ]
    assert any(r.compliant for r in reports)
    assert any(r.policies_failed for r in reports)
    assert any(r.rejected_stage for r in reports)


def test_golden_binaries_are_frozen_bytes(golden):
    """The .bin files are content-addressed by the expected reports; a
    fixture silently swapped for different bytes must be caught even if
    the verdict happens to match."""
    import hashlib

    config, expected = golden
    digests = json.loads((FIXTURES / "binary_digests.json").read_text())
    for name in FIXTURE_BINARIES:
        blob = (FIXTURES / f"{name}.bin").read_bytes()
        assert hashlib.sha256(blob).hexdigest() == digests[name], name
