"""Runtime execution of provisioned code (the paper's future-work
extension): canaries trip, IFCC confines, W^X and NX hold at runtime."""

from __future__ import annotations

import pytest

from repro.core import EnclaveClient, PolicyRegistry, provision
from repro.core import IfccPolicy, LibraryLinkingPolicy, StackProtectionPolicy
from repro.core.runtime import EnclaveExecutor
from repro.toolchain import (
    Compiler, CompilerFlags, FunctionSpec, ProgramSpec, link,
)
from repro.toolchain.codegen import CompiledFunction
from repro.x86 import Assembler, Enc, Mem, RAX, RCX
from tests.conftest import compile_demo, small_provider


def provision_binary(binary, policies):
    provider = small_provider(policies)
    client = EnclaveClient(binary.elf, policies=policies)
    result = provision(provider, client)
    assert result.accepted, result.report
    return result


def executor_for(result, binary, **kw):
    return EnclaveExecutor(
        result.runtime.enclave, result.outcome.loaded,
        symbols=binary.symbols, **kw,
    )


@pytest.fixture(scope="module")
def accepted_demo(libc, all_policies):
    binary = compile_demo(libc, stack_protector=True, ifcc=True, name="rt")
    result = provision_binary(binary, all_policies)
    return binary, result


class TestHappyExecution:
    def test_provisioned_code_runs_to_completion(self, accepted_demo):
        binary, result = accepted_demo
        outcome = executor_for(result, binary).run()
        assert outcome.outcome == "returned"
        assert outcome.instructions_executed > 100

    def test_execution_is_deterministic(self, libc, all_policies):
        binary = compile_demo(libc, stack_protector=True, ifcc=True, name="det-rt")
        counts = []
        for _ in range(2):
            result = provision_binary(binary, all_policies)
            counts.append(executor_for(result, binary).run().instructions_executed)
        assert counts[0] == counts[1]

    def test_canary_instrumentation_executes_cleanly(self, accepted_demo):
        """The epilogue check runs and does NOT fire for honest code."""
        binary, result = accepted_demo
        outcome = executor_for(result, binary).run()
        assert outcome.outcome == "returned"  # no stack-smash event


class TestStackSmash:
    def _smashing_binary(self, libc):
        """main overwrites its canary slot, with full SP instrumentation.

        The compiler would never emit this; we hand-assemble the paper's
        canary pattern around a deliberate (%rsp) overwrite — modelling a
        buffer overflow clobbering the canary.
        """
        asm = Assembler()
        # prologue (the -fstack-protector idiom)
        asm.alu_imm("sub", 24, asm_rsp := __import__("repro.x86", fromlist=["RSP"]).RSP)
        asm.mov_load(Mem(seg="fs", disp=0x28), RAX)
        asm.mov_store(RAX, Mem(base=asm_rsp))
        # "overflow": clobber the canary slot
        asm.mov_imm(0x4141414141414141, RCX)
        asm.mov_store(RCX, Mem(base=asm_rsp))
        # epilogue check
        fail = asm.label("fail")
        asm.mov_load(Mem(seg="fs", disp=0x28), RAX)
        asm.alu_load("cmp", Mem(base=asm_rsp), RAX)
        asm.jcc_label("jne", fail)
        asm.alu_imm("add", 24, asm_rsp)
        asm.ret()
        asm.bind(fail)
        asm.call_symbol("__stack_chk_fail")
        asm.ud2()
        main = CompiledFunction(
            name="main", code=asm.finish(),
            insn_count=asm.instruction_count,
            fixups=list(asm.external_fixups),
        )
        spec = ProgramSpec(name="smash", functions=[FunctionSpec("main")])
        program = Compiler(CompilerFlags(stack_protector=True)).compile(spec)
        # swap in the hand-assembled, canary-clobbering main
        program.functions = [
            main if f.name == "main" else f for f in program.functions
        ]
        return link(program, libc)

    def test_smashed_canary_trips_at_runtime(self, libc, all_policies):
        binary = self._smashing_binary(libc)
        # it *passes* static checking (the instrumentation is present!) —
        policies = PolicyRegistry([
            StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        ])
        result = provision_binary(binary, policies)
        # — but the canary fires when the clobbering code actually runs.
        outcome = executor_for(result, binary).run()
        assert outcome.outcome == "stack-smash"
        assert "__stack_chk_fail" in outcome.detail


class TestMemoryProtectionAtRuntime:
    def test_self_modifying_code_blocked(self, accepted_demo):
        """W^X from apply_engarde_protections holds during execution:
        code that stores to its own text page faults."""
        binary, result = accepted_demo
        loaded = result.outcome.loaded
        exe = executor_for(result, binary)
        from repro.core.runtime import EnclaveMemoryBus
        from repro.x86.interp import ExecutionFault

        bus = EnclaveMemoryBus(result.runtime.enclave)
        with pytest.raises(ExecutionFault, match="write"):
            bus.write(loaded.executable_pages[0], b"\xcc")

    def test_data_pages_not_executable(self, accepted_demo):
        binary, result = accepted_demo
        loaded = result.outcome.loaded
        exe = executor_for(result, binary)
        # jump straight to a writable page: fetch must fault
        outcome = exe.run(entry=loaded.writable_pages[0])
        assert outcome.outcome == "fault"
        assert "fetch" in outcome.detail


class TestIfccConfinement:
    """Corrupt the function-pointer slot post-provisioning (modelling the
    heap corruption IFCC defends against) and observe the difference."""

    def _one_icall_binary(self, libc, *, ifcc: bool):
        spec = ProgramSpec(
            name=f"icall-{ifcc}",
            functions=[
                FunctionSpec("main", n_blocks=1, ops_per_block=(2, 2),
                             indirect_calls=1),
                FunctionSpec("victim", n_blocks=1, ops_per_block=(2, 2),
                             address_taken=True),
            ],
        )
        flags = CompilerFlags(ifcc=ifcc)
        return link(Compiler(flags).compile(spec), libc)

    def _corrupt_slot_and_run(self, libc, *, ifcc: bool):
        binary = self._one_icall_binary(libc, ifcc=ifcc)
        policies = PolicyRegistry([IfccPolicy()]) if ifcc else PolicyRegistry(
            [LibraryLinkingPolicy(libc.reference_hashes())]
        )
        result = provision_binary(binary, policies)
        loaded = result.outcome.loaded
        enclave = result.runtime.enclave

        # the attacker redirects the pointer at a data address (NX)
        slot_vaddr = next(
            v for name, v in binary.symbols.items()
            if name.startswith("__fnptr_main_")
        )
        target = loaded.load_bias + next(
            v for name, v in binary.symbols.items() if name.endswith("_data")
        ) if False else loaded.writable_pages[0] + 0x40
        enclave.write(
            loaded.load_bias + slot_vaddr, target.to_bytes(8, "little")
        )
        return executor_for(result, binary).run()

    def test_without_ifcc_corrupted_pointer_escapes(self, libc):
        outcome = self._corrupt_slot_and_run(libc, ifcc=False)
        assert outcome.outcome == "fault"          # jumped into NX data
        assert "fetch" in outcome.detail

    def test_with_ifcc_corrupted_pointer_confined(self, libc):
        outcome = self._corrupt_slot_and_run(libc, ifcc=True)
        # masking forces the target back into the jump table: control
        # flow stays on legitimate function entries and execution
        # completes instead of escaping.
        assert outcome.outcome == "returned"
