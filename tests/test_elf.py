"""ELF structs, writer/reader round-trip, and EnGarde's format checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elf import (
    Dyn, Ehdr, ElfSymbol, Layout, Phdr, Rela, Shdr, Sym,
    read_elf, write_elf,
)
from repro.elf.constants import (
    ET_DYN, PAGE_SIZE, PT_DYNAMIC, PT_LOAD, R_X86_64_RELATIVE, TEXT_VADDR,
)
from repro.errors import ElfError
from repro.x86 import Assembler, RAX


def build_image(
    *, text=None, data=b"\x00" * 16, bss=32, relocs=0, symbols=None, entry=None
):
    if text is None:
        asm = Assembler()
        asm.mov_imm(42, RAX)
        asm.ret()
        text = asm.finish()
    layout = Layout.compute(len(text), relocs, len(data), bss)
    relocations = [
        (layout.data_vaddr + 8 * i, layout.text_vaddr) for i in range(relocs)
    ]
    if symbols is None:
        symbols = [ElfSymbol("_start", layout.text_vaddr, len(text), "func", "text")]
    return write_elf(
        text=text, data=data, bss_size=bss, symbols=symbols,
        relocations=relocations,
        entry_vaddr=entry if entry is not None else layout.text_vaddr,
        layout=layout,
    )


class TestStructs:
    def test_struct_sizes_match_abi(self):
        assert Ehdr.SIZE == 64
        assert Phdr.SIZE == 56
        assert Shdr.SIZE == 64
        assert Sym.SIZE == 24
        assert Rela.SIZE == 24
        assert Dyn.SIZE == 16

    def test_sym_info_packing(self):
        info = Sym.info(1, 2)
        sym = Sym(0, info, 0, 0, 0, 0)
        assert sym.binding == 1 and sym.type == 2

    def test_rela_info_packing(self):
        info = Rela.info(5, R_X86_64_RELATIVE)
        rela = Rela(0x1000, info, 0x2000)
        assert rela.sym == 5 and rela.type == R_X86_64_RELATIVE

    @given(st.integers(0, 2**16), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_rela_roundtrip(self, sym, rel_type):
        rela = Rela(123, Rela.info(sym, rel_type), -77)
        again = Rela.unpack(rela.pack())
        assert again == rela


class TestLayout:
    def test_text_at_convention(self):
        layout = Layout.compute(100, 2, 64, 128)
        assert layout.text_vaddr == TEXT_VADDR
        assert layout.rela_vaddr % PAGE_SIZE == 0
        assert layout.rela_vaddr >= layout.text_vaddr + 100

    def test_segments_do_not_overlap(self):
        layout = Layout.compute(5000, 10, 300, 1000)
        assert layout.dynamic_vaddr >= layout.rela_vaddr + layout.rela_size
        assert layout.data_vaddr >= layout.dynamic_vaddr + layout.dynamic_size
        assert layout.bss_vaddr >= layout.data_vaddr + layout.data_size

    def test_memsz_covers_bss(self):
        layout = Layout.compute(100, 0, 16, 999)
        assert layout.data_segment_memsz - layout.data_segment_filesz >= 999 - 16


class TestRoundTrip:
    def test_basic(self):
        img = read_elf(build_image())
        assert img.ehdr.e_type == ET_DYN
        assert len(img.text_sections) == 1
        assert img.entry == TEXT_VADDR
        assert [s.name for s in img.sections][1:] == [
            ".text", ".rela.dyn", ".dynamic", ".data", ".bss",
            ".symtab", ".strtab", ".shstrtab",
        ]

    def test_text_bytes_preserved(self):
        asm = Assembler()
        asm.mov_imm(0xDEAD, RAX)
        asm.ret()
        text = asm.finish()
        img = read_elf(build_image(text=text))
        assert img.text_sections[0].data == text

    def test_symbols_roundtrip(self):
        blob = build_image(symbols=[
            ElfSymbol("_start", TEXT_VADDR, 8, "func", "text"),
            ElfSymbol("obj", 0x2080, 16, "object", "data"),
            ElfSymbol("local_helper", TEXT_VADDR + 4, 4, "func", "text", "local"),
        ])
        img = read_elf(blob)
        names = {s.name for s in img.symbols}
        assert names == {"_start", "obj", "local_helper"}
        start = next(s for s in img.symbols if s.name == "_start")
        assert start.is_function and start.value == TEXT_VADDR

    def test_relocations_via_dynamic(self):
        img = read_elf(build_image(relocs=3))
        assert len(img.relocations) == 3
        assert all(r.type == R_X86_64_RELATIVE for r in img.relocations)

    def test_program_headers(self):
        img = read_elf(build_image(relocs=1))
        types = [p.p_type for p in img.phdrs]
        assert types == [PT_LOAD, PT_LOAD, PT_DYNAMIC]
        text_seg, data_seg = img.load_segments
        assert text_seg.p_flags & 0x1           # executable
        assert not (data_seg.p_flags & 0x1)     # not executable
        # page congruence, as the kernel (and our loader) require
        assert text_seg.p_vaddr % PAGE_SIZE == text_seg.p_offset % PAGE_SIZE

    def test_code_data_page_separation(self):
        img = read_elf(build_image())
        text = img.text_sections[0]
        text_pages = set(range(text.vaddr // PAGE_SIZE,
                               (text.vaddr + text.size - 1) // PAGE_SIZE + 1))
        for sec in img.data_sections:
            sec_pages = set(range(sec.vaddr // PAGE_SIZE,
                                  (sec.vaddr + sec.size - 1) // PAGE_SIZE + 1))
            assert not (text_pages & sec_pages)


class TestValidation:
    def test_bad_magic(self):
        blob = bytearray(build_image())
        blob[0] = 0x7E
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    def test_wrong_class(self):
        blob = bytearray(build_image())
        blob[4] = 1  # ELFCLASS32
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    def test_wrong_endianness(self):
        blob = bytearray(build_image())
        blob[5] = 2  # big endian
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    def test_wrong_machine(self):
        blob = bytearray(build_image())
        blob[18] = 0x28  # ARM
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    def test_not_pie(self):
        blob = bytearray(build_image())
        blob[16] = 2  # ET_EXEC
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    def test_truncated_file(self):
        blob = build_image()
        with pytest.raises(ElfError):
            read_elf(blob[:40])
        with pytest.raises(ElfError):
            read_elf(blob[:2000])

    def test_entry_outside_text_rejected_at_write(self):
        with pytest.raises(ElfError):
            build_image(entry=0x9999999)

    def test_section_accessor(self):
        img = read_elf(build_image())
        assert img.section(".text").is_text
        with pytest.raises(ElfError):
            img.section(".nonexistent")
