"""SHA-256: NIST vectors, hashlib equivalence, incremental interface."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import SHA256, sha256, sha256_fast

# FIPS 180-4 / NIST CAVP known-answer vectors.
KAT = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
    (
        b"a" * 1_000_000,
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
    ),
]


@pytest.mark.parametrize("message,expected", KAT, ids=["empty", "abc", "448bit", "1M-a"])
def test_known_answer_vectors(message, expected):
    assert sha256(message).hex() == expected


@pytest.mark.parametrize("message,expected", KAT[:3], ids=["empty", "abc", "448bit"])
def test_fast_path_matches(message, expected):
    assert sha256_fast(message).hex() == expected


def test_incremental_equals_oneshot():
    h = SHA256()
    for chunk in (b"hello ", b"", b"wor", b"ld", b"!" * 200):
        h.update(chunk)
    assert h.digest() == sha256(b"hello world" + b"!" * 200)


def test_digest_is_idempotent():
    h = SHA256(b"data")
    first = h.digest()
    assert h.digest() == first
    h.update(b"more")
    assert h.digest() != first


def test_copy_isolates_state():
    h = SHA256(b"shared prefix")
    clone = h.copy()
    h.update(b"left")
    clone.update(b"right")
    assert h.digest() != clone.digest()
    assert h.digest() == sha256(b"shared prefixleft")


def test_update_rejects_str():
    with pytest.raises(TypeError):
        SHA256().update("not bytes")  # type: ignore[arg-type]


def test_hexdigest():
    assert SHA256(b"abc").hexdigest() == KAT[1][1]


@given(st.binary(max_size=2048))
@settings(max_examples=200, deadline=None)
def test_matches_hashlib(data):
    assert sha256(data) == hashlib.sha256(data).digest()


@given(st.lists(st.binary(max_size=300), max_size=12))
@settings(max_examples=100, deadline=None)
def test_chunking_invariance(chunks):
    h = SHA256()
    for chunk in chunks:
        h.update(chunk)
    assert h.digest() == hashlib.sha256(b"".join(chunks)).digest()


def test_block_boundary_lengths():
    # lengths straddling the 64-byte block and 55/56-byte padding edges
    for n in (54, 55, 56, 57, 63, 64, 65, 119, 127, 128, 129):
        data = bytes(range(256))[:n] * 1
        assert sha256(data) == hashlib.sha256(data).digest(), n


def test_multi_mb_one_byte_updates_match_hashlib():
    """PR 3 satellite: the incremental path must absorb a multi-MB message
    fed one byte at a time without per-update buffer re-copies (the old
    implementation did ``bytes(data)`` plus a full re-concatenation per
    call).  Functional bar: identical digest to hashlib; perf bar: the
    2 MiB run completes inside the suite's normal budget."""
    data = bytes(range(256)) * (2 * 1024 * 1024 // 256)  # 2 MiB
    h = SHA256()
    view = memoryview(data)
    for i in range(len(data)):
        h.update(view[i:i + 1])
    assert h.digest() == hashlib.sha256(data).digest()


def test_update_accepts_memoryview_and_bytearray_without_copy_semantics():
    data = bytearray(b"abc" * 1000)
    h = SHA256()
    h.update(memoryview(data))
    h.update(data)
    expected = hashlib.sha256(bytes(data) * 2).digest()
    assert h.digest() == expected


def test_update_accepts_non_byte_itemsize_memoryview():
    import array

    values = array.array("I", range(64))
    h = SHA256()
    h.update(memoryview(values))
    assert h.digest() == hashlib.sha256(values.tobytes()).digest()
