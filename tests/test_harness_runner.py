"""Runner internals: policy setup mapping, sizing, option plumbing."""

from __future__ import annotations

import pytest

from repro.harness.runner import POLICY_SETUPS, make_policy, run_cell
from repro.toolchain import build_libc


class TestPolicySetups:
    def test_figures_map_to_required_instrumentation(self):
        assert POLICY_SETUPS["library-linking"]["figure"] == 3
        assert not POLICY_SETUPS["library-linking"]["stack_protector"]
        assert POLICY_SETUPS["stack-protection"]["figure"] == 4
        assert POLICY_SETUPS["stack-protection"]["stack_protector"]
        assert POLICY_SETUPS["indirect-function-call"]["figure"] == 5
        assert POLICY_SETUPS["indirect-function-call"]["ifcc"]

    def test_make_policy(self, libc):
        assert make_policy("library-linking", libc).name == "library-linking"
        assert make_policy("stack-protection", libc).name == "stack-protection"
        assert make_policy("indirect-function-call", libc).name == (
            "indirect-function-call"
        )
        with pytest.raises(KeyError):
            make_policy("no-such-policy", libc)

    def test_make_policy_forwards_options(self, libc):
        policy = make_policy("library-linking", libc, memoize=True)
        assert policy.memoize

    def test_exemptions_wired_for_stack_protection(self, libc):
        policy = make_policy("stack-protection", libc)
        assert "memcpy" in policy.exempt_functions
        assert "_start" in policy.exempt_functions


class TestRunCell:
    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            run_cell("mcf", "nonexistent-policy", scale=0.05)

    def test_cell_result_fields(self):
        cell = run_cell("mcf", "indirect-function-call", scale=0.05)
        assert cell.benchmark == "mcf"
        assert cell.policy == "indirect-function-call"
        assert cell.total_cycles >= (
            cell.disassembly_cycles + cell.policy_cycles + cell.loading_cycles
        )
        assert cell.sgx_instructions > 0

    def test_policy_options_flow_through(self):
        plain = run_cell("mcf", "library-linking", scale=0.05)
        memo = run_cell("mcf", "library-linking", scale=0.05,
                        policy_options={"memoize": True})
        assert memo.policy_cycles < plain.policy_cycles
        assert plain.accepted and memo.accepted

    def test_prebuilt_binary_accepted(self, libc):
        from repro.toolchain.workloads import build_workload

        binary = build_workload("mcf", scale=0.05, libc=libc)
        cell = run_cell("mcf", "library-linking", binary=binary, libc=libc)
        assert cell.insn_count == binary.insn_count
