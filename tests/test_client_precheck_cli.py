"""Client-side independent pre-checking and the CLI entry point."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.core import EnGarde
from tests.conftest import compile_demo


class TestClientPrecheck:
    """Paper section 3: 'The client can also use EnGarde to independently
    verify policy compliance of the enclave code that it wants to
    provision' — i.e. run the same inspection locally, no enclave needed."""

    def test_precheck_predicts_acceptance(self, libc, all_policies,
                                          demo_instrumented):
        engarde = EnGarde(all_policies)
        outcome = engarde.inspect(demo_instrumented.elf)
        assert outcome.accepted  # safe to submit

    def test_precheck_predicts_rejection(self, libc, all_policies, demo_plain):
        engarde = EnGarde(all_policies)
        outcome = engarde.inspect(demo_plain.elf)
        assert not outcome.accepted
        # the client sees the full violation details locally — unlike the
        # provider, who only ever gets the policy names
        details = [v for r in outcome.policy_results for v in r.violations]
        assert details

    def test_precheck_matches_provider_verdict(self, libc, all_policies):
        from repro.core import EnclaveClient, provision
        from tests.conftest import small_provider

        for instrumented in (False, True):
            binary = compile_demo(
                libc, stack_protector=instrumented, ifcc=instrumented,
                name=f"precheck{instrumented}",
            )
            local = EnGarde(all_policies).inspect(binary.elf).accepted
            result = provision(
                small_provider(all_policies),
                EnclaveClient(binary.elf, policies=all_policies),
            )
            assert local == result.accepted


@pytest.mark.slow
class TestCli:
    def _run(self, *args):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_fig2(self):
        out = self._run("fig2")
        assert "Figure 2" in out and "Musl-libc" in out

    def test_demo(self):
        out = self._run("demo", "--scale", "0.05")
        assert "ACCEPTED" in out

    def test_fig3_scaled(self):
        out = self._run("fig3", "--scale", "0.03")
        assert "Figure 3" in out
        assert "Nginx" in out and "429.mcf" in out

    def test_bad_target(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fig9"],
            capture_output=True, text=True,
        )
        assert proc.returncode != 0
