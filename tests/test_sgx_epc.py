"""EPC pool: allocation, hardware encryption, integrity, isolation."""

from __future__ import annotations

import pytest

from repro.errors import EpcExhaustedError, SgxError
from repro.sgx import Epc, PagePermissions
from repro.sgx.params import PAGE_SIZE


@pytest.fixture()
def epc():
    return Epc(8, hardware_key=b"hw-key-for-tests")


class TestPool:
    def test_allocation_accounting(self, epc):
        assert epc.free_pages == 8 and epc.used_pages == 0
        page = epc.allocate(eid=1, vaddr=0x1000)
        assert epc.free_pages == 7
        assert page.owner_eid == 1 and page.vaddr == 0x1000

    def test_exhaustion(self, epc):
        for i in range(8):
            epc.allocate(1, 0x1000 + i * PAGE_SIZE)
        with pytest.raises(EpcExhaustedError):
            epc.allocate(1, 0x100000)

    def test_release_recycles(self, epc):
        pages = [epc.allocate(1, 0x1000 + i * PAGE_SIZE) for i in range(8)]
        epc.release(pages[0])
        assert epc.free_pages == 1
        again = epc.allocate(2, 0x9000)
        assert again.owner_eid == 2

    def test_double_free_rejected(self, epc):
        page = epc.allocate(1, 0x1000)
        epc.release(page)
        with pytest.raises(SgxError):
            epc.release(page)

    def test_zero_pages_invalid(self):
        with pytest.raises(ValueError):
            Epc(0, b"key")


class TestCrypto:
    def test_fresh_page_reads_zero(self, epc):
        page = epc.allocate(1, 0x1000)
        assert epc.read_plaintext(page, eid=1) == b"\x00" * PAGE_SIZE

    def test_write_read_roundtrip(self, epc):
        page = epc.allocate(1, 0x1000)
        data = bytes(range(256)) * 16
        epc.write_plaintext(page, data, eid=1)
        assert epc.read_plaintext(page, eid=1) == data

    def test_ciphertext_differs_from_plaintext(self, epc):
        page = epc.allocate(1, 0x1000)
        data = b"TOP-SECRET-ENCLAVE-CONTENT".ljust(PAGE_SIZE, b".")
        epc.write_plaintext(page, data, eid=1)
        ct = epc.read_ciphertext(page)
        assert ct != data
        assert b"TOP-SECRET" not in ct

    def test_same_plaintext_different_pages_different_ciphertext(self, epc):
        a = epc.allocate(1, 0x1000)
        b = epc.allocate(1, 0x2000)
        data = b"\xaa" * PAGE_SIZE
        epc.write_plaintext(a, data, eid=1)
        epc.write_plaintext(b, data, eid=1)
        assert epc.read_ciphertext(a) != epc.read_ciphertext(b)

    def test_partial_write_rejected(self, epc):
        page = epc.allocate(1, 0x1000)
        with pytest.raises(SgxError):
            epc.write_plaintext(page, b"short", eid=1)

    def test_release_scrubs_content(self, epc):
        page = epc.allocate(1, 0x1000)
        epc.write_plaintext(page, b"\xff" * PAGE_SIZE, eid=1)
        epc.release(page)
        fresh = epc.allocate(2, 0x3000)
        assert epc.read_plaintext(fresh, eid=2) == b"\x00" * PAGE_SIZE


class TestIsolation:
    def test_cross_enclave_read_denied(self, epc):
        page = epc.allocate(1, 0x1000)
        with pytest.raises(SgxError):
            epc.read_plaintext(page, eid=2)

    def test_cross_enclave_write_denied(self, epc):
        page = epc.allocate(1, 0x1000)
        with pytest.raises(SgxError):
            epc.write_plaintext(page, b"\x00" * PAGE_SIZE, eid=2)

    def test_tamper_detected_on_next_access(self, epc):
        page = epc.allocate(1, 0x1000)
        epc.write_plaintext(page, b"\x42" * PAGE_SIZE, eid=1)
        epc.tamper(page, b"\x00" * PAGE_SIZE)
        with pytest.raises(SgxError, match="integrity"):
            epc.read_plaintext(page, eid=1)

    def test_different_machines_different_keystreams(self):
        a = Epc(2, b"machine-a")
        b = Epc(2, b"machine-b")
        pa = a.allocate(1, 0x1000)
        pb = b.allocate(1, 0x1000)
        data = b"\x55" * PAGE_SIZE
        a.write_plaintext(pa, data, eid=1)
        b.write_plaintext(pb, data, eid=1)
        assert a.read_ciphertext(pa) != b.read_ciphertext(pb)


def test_permissions_string():
    assert PagePermissions().as_str() == "rw-"
    assert PagePermissions(read=True, write=False, execute=True).as_str() == "r-x"
