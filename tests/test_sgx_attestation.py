"""Attestation: EREPORT MACs, quoting enclave, client-side verification."""

from __future__ import annotations

import pytest

from repro.crypto import HmacDrbg
from repro.errors import AttestationError, SgxError
from repro.sgx import (
    AttestationService, QuotingEnclave, SgxMachine, SgxParams, verify_quote,
)

BASE = 0x10000


@pytest.fixture()
def machine():
    return SgxMachine(SgxParams(epc_pages=32, heap_initial_pages=2))


@pytest.fixture()
def enclave(machine):
    e = machine.ecreate(BASE, 0x40000)
    machine.add_measured_page(e, BASE, b"engarde bootstrap")
    machine.einit(e)
    return e


@pytest.fixture()
def qe(machine):
    return QuotingEnclave(machine, HmacDrbg(b"intel-provisioning"))


class TestReport:
    def test_report_verifies_on_same_machine(self, machine, enclave):
        report = machine.ereport(enclave, b"channel-key-fp")
        assert machine.verify_report(report)

    def test_report_data_padded_to_64(self, machine, enclave):
        report = machine.ereport(enclave, b"short")
        assert len(report.report_data) == 64
        assert report.report_data.startswith(b"short")

    def test_report_data_too_long(self, machine, enclave):
        with pytest.raises(SgxError):
            machine.ereport(enclave, b"x" * 65)

    def test_report_before_einit(self, machine):
        pending = machine.ecreate(BASE + 0x100000, 0x10000)
        with pytest.raises(SgxError):
            machine.ereport(pending, b"data")

    def test_report_not_portable_across_machines(self, machine, enclave):
        other = SgxMachine(
            SgxParams(epc_pages=32, heap_initial_pages=2),
            hardware_seed=b"other-machine",
        )
        report = machine.ereport(enclave, b"data")
        assert not other.verify_report(report)

    def test_tampered_report_rejected(self, machine, enclave):
        import dataclasses

        report = machine.ereport(enclave, b"data")
        forged = dataclasses.replace(report, mrenclave=b"\x00" * 32)
        assert not machine.verify_report(forged)


class TestQuote:
    def test_quote_verifies(self, machine, enclave, qe):
        report = machine.ereport(enclave, b"fp")
        quote = qe.quote(report, challenge=b"nonce-123")
        verify_quote(
            quote, qe.device_public_key,
            expected_mrenclave=enclave.mrenclave, challenge=b"nonce-123",
        )

    def test_wrong_mrenclave_rejected(self, machine, enclave, qe):
        quote = qe.quote(machine.ereport(enclave, b"fp"), challenge=b"n")
        with pytest.raises(AttestationError, match="MRENCLAVE"):
            verify_quote(
                quote, qe.device_public_key,
                expected_mrenclave=b"\x00" * 32, challenge=b"n",
            )

    def test_stale_challenge_rejected(self, machine, enclave, qe):
        quote = qe.quote(machine.ereport(enclave, b"fp"), challenge=b"old")
        with pytest.raises(AttestationError, match="challenge"):
            verify_quote(
                quote, qe.device_public_key,
                expected_mrenclave=enclave.mrenclave, challenge=b"new",
            )

    def test_wrong_device_key_rejected(self, machine, enclave, qe):
        other_qe = QuotingEnclave(machine, HmacDrbg(b"rogue"))
        quote = qe.quote(machine.ereport(enclave, b"fp"), challenge=b"n")
        with pytest.raises(AttestationError, match="signature"):
            verify_quote(
                quote, other_qe.device_public_key,
                expected_mrenclave=enclave.mrenclave, challenge=b"n",
            )

    def test_forged_report_rejected_by_qe(self, machine, enclave, qe):
        import dataclasses

        report = machine.ereport(enclave, b"fp")
        forged = dataclasses.replace(report, report_data=b"evil".ljust(64, b"\x00"))
        with pytest.raises(AttestationError):
            qe.quote(forged, challenge=b"n")

    def test_quote_from_foreign_machine_rejected(self, enclave, machine, qe):
        other = SgxMachine(
            SgxParams(epc_pages=32, heap_initial_pages=2),
            hardware_seed=b"other",
        )
        other_qe = QuotingEnclave(other, HmacDrbg(b"intel"))
        report = machine.ereport(enclave, b"fp")
        with pytest.raises(AttestationError):
            other_qe.quote(report, challenge=b"n")

    def test_tampered_quote_signature(self, machine, enclave, qe):
        import dataclasses

        quote = qe.quote(machine.ereport(enclave, b"fp"), challenge=b"n")
        bad = dataclasses.replace(
            quote, signature=bytes(len(quote.signature))
        )
        with pytest.raises(AttestationError):
            verify_quote(
                bad, qe.device_public_key,
                expected_mrenclave=enclave.mrenclave, challenge=b"n",
            )

    def test_report_data_travels_in_quote(self, machine, enclave, qe):
        fp = b"public-key-fingerprint-32-bytes!"
        quote = qe.quote(machine.ereport(enclave, fp), challenge=b"n")
        assert quote.report_data[:32] == fp


class TestAttestationService:
    def test_registry(self, qe):
        service = AttestationService()
        service.register("machine-7", qe.device_public_key)
        assert service.device_key("machine-7") == qe.device_public_key
        with pytest.raises(AttestationError):
            service.device_key("unknown")
