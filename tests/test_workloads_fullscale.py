"""Full-scale #Inst calibration checks for the remaining benchmarks.

The bench suite asserts the Figure-3 counts for all seven at full scale;
these tests pin the two cheapest full-scale builds in the regular test
run too (marked slow), so a calibration regression is caught by
``pytest tests/`` without running the whole benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.harness.tables import PAPER_DATA
from repro.toolchain.workloads import PROFILES, build_workload


@pytest.mark.slow
@pytest.mark.parametrize("name", ["mcf", "bzip2"])
def test_fullscale_plain_insn_count(name, libc):
    binary = build_workload(name, scale=1.0, libc=libc)
    target = PROFILES[name].target_insns
    assert abs(binary.insn_count - target) <= max(target // 1000, 10)


@pytest.mark.slow
def test_fullscale_instrumented_counts_grow_like_the_paper(libc):
    plain = build_workload("mcf", scale=1.0, libc=libc)
    sp = build_workload("mcf", scale=1.0, stack_protector=True, libc=libc)
    ifcc = build_workload("mcf", scale=1.0, ifcc=True, libc=libc)
    paper_plain = PAPER_DATA[3]["mcf"][0]
    paper_sp = PAPER_DATA[4]["mcf"][0]
    paper_ifcc = PAPER_DATA[5]["mcf"][0]
    # stack protection adds ~the paper's delta; mcf has no indirect calls
    # so the IFCC build is identical — exactly as in the paper's Figure 5.
    assert sp.insn_count > plain.insn_count
    assert abs((sp.insn_count - plain.insn_count)
               - (paper_sp - paper_plain)) < 120
    assert ifcc.insn_count == plain.insn_count
    assert paper_ifcc == paper_plain
