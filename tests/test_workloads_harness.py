"""Workload generation and the figure-regeneration harness (scaled down)."""

from __future__ import annotations

import pytest

from repro.harness.runner import POLICY_SETUPS, run_cell
from repro.harness.tables import PAPER_DATA, render_comparison, render_figure
from repro.toolchain.workloads import PAPER_BENCHMARKS, PROFILES, build_workload

SCALE = 0.05  # shapes preserved, fast enough for the test suite


class TestProfiles:
    def test_all_paper_benchmarks_present(self):
        assert set(PAPER_BENCHMARKS) == set(PROFILES)
        assert len(PAPER_BENCHMARKS) == 7

    def test_targets_match_figure3(self):
        for name, profile in PROFILES.items():
            assert profile.target_insns == PAPER_DATA[3][name][0]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build_workload("quake3")


class TestGeneration:
    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_builds_and_validates(self, name, libc):
        from repro.elf import read_elf
        from repro.x86 import decode_all, validate

        binary = build_workload(name, scale=SCALE, libc=libc)
        img = read_elf(binary.elf)
        text = img.text_sections[0]
        insns = decode_all(text.data)
        assert len(insns) == binary.insn_count
        validate(
            insns,
            entry=binary.entry_vaddr - text.vaddr,
            roots=[s.value - text.vaddr for s in img.function_symbols()],
        )

    def test_deterministic(self, libc):
        a = build_workload("mcf", scale=SCALE, libc=libc)
        b = build_workload("mcf", scale=SCALE, libc=libc)
        assert a.elf == b.elf

    def test_instrumentation_grows_counts(self, libc):
        plain = build_workload("otp-gen", scale=SCALE, libc=libc)
        sp = build_workload("otp-gen", scale=SCALE, stack_protector=True, libc=libc)
        assert sp.insn_count > plain.insn_count

    def test_full_scale_calibration_hits_target(self, libc):
        # mcf is the smallest full-scale benchmark; 0.1% tolerance
        binary = build_workload("mcf", scale=1.0, libc=libc)
        target = PROFILES["mcf"].target_insns
        assert abs(binary.insn_count - target) <= max(target // 1000, 10)

    def test_nginx_has_the_most_relocations(self, libc):
        relocs = {
            name: build_workload(name, scale=SCALE, libc=libc).relocation_count
            for name in ("nginx", "bzip2", "graph500")
        }
        assert relocs["nginx"] > relocs["bzip2"]
        assert relocs["nginx"] > relocs["graph500"]


class TestHarness:
    @pytest.mark.parametrize("policy", list(POLICY_SETUPS))
    def test_cell_accepts_compliant_workload(self, policy):
        cell = run_cell("mcf", policy, scale=SCALE)
        assert cell.accepted
        assert cell.disassembly_cycles > 0
        assert cell.policy_cycles > 0
        assert cell.loading_cycles > 0

    def test_policy_ordering_shape(self):
        """IFCC checking is orders cheaper than library-linking — the
        headline shape difference between Figures 3 and 5."""
        lib = run_cell("mcf", "library-linking", scale=SCALE)
        ifcc = run_cell("mcf", "indirect-function-call", scale=SCALE)
        assert lib.policy_cycles > 5 * ifcc.policy_cycles

    def test_loading_is_cheapest_phase(self):
        cell = run_cell("mcf", "library-linking", scale=SCALE)
        assert cell.loading_cycles < cell.disassembly_cycles
        assert cell.loading_cycles < cell.policy_cycles

    def test_tables_render(self):
        cell = run_cell("mcf", "library-linking", scale=SCALE)
        table = render_figure([cell], "Figure 3 (scaled)")
        assert "429.mcf" in table and f"{cell.insn_count:,}" in table
        comparison = render_comparison([cell], figure=3)
        assert "ratio" in comparison

    def test_paper_data_is_complete(self):
        for figure, rows in PAPER_DATA.items():
            assert set(rows) == set(PAPER_BENCHMARKS)
            for row in rows.values():
                assert len(row) == 4 and all(v > 0 for v in row)


class TestExport:
    def test_json_with_ratios(self):
        import json

        from repro.harness import cells_to_json

        cell = run_cell("mcf", "library-linking", scale=SCALE)
        payload = json.loads(cells_to_json([cell], figure=3))
        row = payload["cells"][0]
        assert row["benchmark"] == "mcf"
        assert row["paper"]["insn_count"] == PAPER_DATA[3]["mcf"][0]
        assert 0 < row["ratios"]["loading_cycles"] < 10

    def test_csv_roundtrip(self):
        import csv
        import io

        from repro.harness import cells_to_csv

        cell = run_cell("mcf", "indirect-function-call", scale=SCALE)
        rows = list(csv.DictReader(io.StringIO(cells_to_csv([cell]))))
        assert rows[0]["benchmark"] == "mcf"
        assert int(rows[0]["policy_cycles"]) == cell.policy_cycles
