"""Streaming provisioning: pipeline, CDC/delta, and differential pins.

Four battle fronts, matching the streamed receive path's promises:

* the chunk-resumable decode and the fused prescan are token-identical
  to the whole-buffer phased decode at adversarial record boundaries;
* content-defined chunking is bit-identical between the vectorised and
  scalar gear walks, and the dirty-range differ localises edits;
* delta re-inspection **fails closed** — a moved or changed function
  never reuses a stale verdict, and a swapped binary is re-inspected;
* the streamed provisioning mode is a pure wall-clock optimisation:
  wire transcript, verdict bytes, and meter totals are byte/tick
  identical to the frozen phased oracle, including under seeded faults.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core import EnclaveClient, provision
from repro.core import streaming as st
from repro.core.provisioning import ResilienceConfig
from repro.core.streaming import (
    SPILL_WINDOW,
    DeltaIndex,
    FunctionVerdictMemo,
    StreamingPipeline,
    StreamScan,
    _dirty_ranges,
    _MemoSession,
    build_delta_index,
    cdc_chunks,
    delta_scan,
)
from repro.elf import read_elf
from repro.faults import FakeClock, FaultPlan, FaultSpec, injected
from repro.net import sock as sock_module
from repro.x86 import iter_decode
from tests.conftest import small_provider


def _blob(n: int, seed: bytes = b"streaming-test") -> bytes:
    """Deterministic pseudo-random bytes (no process randomness)."""
    out = bytearray()
    counter = 0
    while len(out) < n:
        out += hashlib.sha256(seed + counter.to_bytes(8, "big")).digest()
        counter += 1
    return bytes(out[:n])


def _tokens(insns) -> list[tuple[int, str, bytes]]:
    return [(i.offset, i.mnemonic, bytes(i.raw)) for i in insns]


# --------------------------------------------------------------------------
# Content-defined chunking
# --------------------------------------------------------------------------


class TestCdcChunks:
    def test_partition_invariants(self):
        data = _blob(50_000)
        chunks = cdc_chunks(data)
        assert chunks[0][0] == 0 and chunks[-1][1] == len(data)
        for (s0, e0, _), (s1, _e1, _) in zip(chunks, chunks[1:]):
            assert e0 == s1 and s0 < e0
        for s, e, digest in chunks:
            assert digest == hashlib.sha256(data[s:e]).digest()
            assert e - s <= 16384

    def test_vectorised_matches_scalar_reference(self):
        if st._np is None:
            pytest.skip("numpy unavailable; only the scalar walk runs")
        for seed in (b"a", b"b", b"c"):
            for n in (0, 1, 63, 64, 511, 512, 513, 5000, 70_000):
                data = _blob(n, seed)
                for params in (
                    dict(min_size=512, avg_bits=12, max_size=16384),
                    dict(min_size=64, avg_bits=6, max_size=1024),
                    dict(min_size=128, avg_bits=8, max_size=4096),
                ):
                    assert cdc_chunks(data, **params) == \
                        st._cdc_chunks_scalar(data, **params), (seed, n, params)

    def test_empty_input(self):
        assert cdc_chunks(b"") == []

    def test_input_below_min_size_is_one_chunk(self):
        data = _blob(100)
        assert cdc_chunks(data) == [
            (0, 100, hashlib.sha256(data).digest())
        ]

    def test_local_edit_preserves_distant_chunks(self):
        data = _blob(60_000)
        edited = bytearray(data)
        edited[30_000] ^= 0xFF
        before = cdc_chunks(data)
        after = cdc_chunks(bytes(edited))
        # boundaries re-synchronise: chunk triples far from the edit agree
        shared = set(before) & set(after)
        assert any(e <= 20_000 for _s, e, _d in shared)
        assert any(s >= 40_000 for s, _e, _d in shared)


class TestDirtyRanges:
    def _chunked(self, data: bytes):
        return cdc_chunks(data)

    def test_identical_chunkings_have_no_dirty_ranges(self):
        chunks = self._chunked(_blob(40_000))
        assert _dirty_ranges(chunks, list(chunks)) == []

    def test_edit_is_localised_and_covered(self):
        data = _blob(60_000)
        edited = bytearray(data)
        edited[33_333] ^= 0x5A
        dirty = _dirty_ranges(self._chunked(data), self._chunked(bytes(edited)))
        assert dirty is not None and dirty
        assert any(s <= 33_333 < e for s, e in dirty)
        total = sum(e - s for s, e in dirty)
        assert total < len(data) // 2, "edit should stay localised"

    def test_length_change_returns_none(self):
        data = _blob(40_000)
        assert _dirty_ranges(
            self._chunked(data), self._chunked(data[:-1000])
        ) is None


# --------------------------------------------------------------------------
# Streaming pipeline vs whole-buffer decode
# --------------------------------------------------------------------------


class TestStreamingPipeline:
    def _drive(self, raw: bytes, cut_points) -> StreamingPipeline:
        buf = bytearray(raw)
        pipeline = StreamingPipeline(buf)
        prev = 0
        for cut in cut_points:
            assert cut >= prev
            pipeline.advance(cut)
            prev = cut
        pipeline.advance(len(raw))
        return pipeline

    def test_scan_token_identical_to_phased_decode(self, demo_instrumented):
        raw = demo_instrumented.elf
        text = read_elf(raw).text_sections[0]
        oracle = _tokens(iter_decode(text.data, 0, len(text.data)))
        # adversarial record boundaries: tiny prefixes through the ELF and
        # program headers, then cuts straddling the text both mid-record
        # and exactly at the text end
        text_end = text.offset + len(text.data)
        cuts = sorted(set(
            list(range(1, 80, 7))
            + [text.offset - 1, text.offset, text.offset + 1]
            + list(range(text.offset, text_end, 61))
            + [text_end - 1, text_end, text_end + 3]
        ))
        pipeline = self._drive(raw, [c for c in cuts if 0 <= c <= len(raw)])
        scan = pipeline.finish()
        assert scan is not None and scan.error is None
        assert scan.code == text.data
        assert _tokens(scan.instructions) == oracle

    def test_prescan_artifacts_match_from_instructions(self, demo_instrumented):
        raw = demo_instrumented.elf
        text = read_elf(raw).text_sections[0]
        pipeline = self._drive(raw, range(0, len(raw), 97))
        scan = pipeline.finish()
        assert scan is not None
        rebuilt = StreamScan.from_instructions(scan.code, scan.instructions)
        assert scan.by_offset == rebuilt.by_offset
        assert scan.branch_idx == rebuilt.branch_idx
        assert scan.term_idx == rebuilt.term_idx
        assert _tokens(scan.direct_calls) == _tokens(rebuilt.direct_calls)
        assert scan.indirect_idx == rebuilt.indirect_idx
        assert scan.bundle_violation == rebuilt.bundle_violation
        assert scan.n_bytes == rebuilt.n_bytes

    def test_single_byte_records_near_headers(self, demo_instrumented):
        raw = demo_instrumented.elf
        text = read_elf(raw).text_sections[0]
        cuts = list(range(1, 200)) + list(range(200, len(raw), 997))
        pipeline = self._drive(raw, cuts)
        scan = pipeline.finish()
        assert scan is not None
        assert _tokens(scan.instructions) == _tokens(
            iter_decode(text.data, 0, len(text.data))
        )

    def test_text_slice_none_until_text_complete(self, demo_instrumented):
        raw = demo_instrumented.elf
        text = read_elf(raw).text_sections[0]
        buf = bytearray(raw)
        pipeline = StreamingPipeline(buf)
        pipeline.advance(text.offset + len(text.data) - 1)
        assert pipeline.text_slice() is None
        pipeline.advance(text.offset + len(text.data))
        assert pipeline.text_slice() == text.data

    def test_non_elf_content_gives_up_cleanly(self):
        raw = _blob(8192)
        buf = bytearray(raw)
        pipeline = StreamingPipeline(buf)
        for cut in range(0, len(raw) + 1, 512):
            pipeline.advance(cut)
        assert pipeline.finish() is None

    def test_decode_disabled_keeps_header_tracking_only(self, demo_instrumented):
        raw = demo_instrumented.elf
        text = read_elf(raw).text_sections[0]
        buf = bytearray(raw)
        pipeline = StreamingPipeline(buf, decode=False)
        pipeline.advance(len(raw))
        assert pipeline.finish() is None
        assert pipeline.text_slice() == text.data
        assert not pipeline.instructions


# --------------------------------------------------------------------------
# Per-function verdict memo: fail-closed properties
# --------------------------------------------------------------------------


def _session(text: bytes, boundaries: list[int]) -> _MemoSession:
    return _MemoSession({}, text, boundaries)


class TestFunctionVerdictMemoFailClosed:
    BOUNDS = [0, 1024, 2048, 3072]

    def _recorded(self, text: bytes):
        """One memo session over *text* with a verdict recorded for the
        function at 1024 that also read a byte inside [3072, 4096)."""
        entries: dict = {}
        session = _MemoSession(entries, text, list(self.BOUNDS))
        session.record("f", 1024, 7, None, [("charge", "x", 1)], [3100])
        return entries

    def test_hit_when_nothing_changed(self):
        text = _blob(4096)
        entries = self._recorded(text)
        again = _MemoSession(entries, text, list(self.BOUNDS))
        assert again.lookup("f", 1024) == (7, None, [("charge", "x", 1)])

    def test_changed_function_bytes_never_hit(self):
        text = _blob(4096)
        entries = self._recorded(text)
        mutated = bytearray(text)
        mutated[1500] ^= 0x01
        session = _MemoSession(entries, bytes(mutated), list(self.BOUNDS))
        assert session.lookup("f", 1024) is None

    def test_moved_function_never_hits_even_with_identical_bytes(self):
        text = _blob(4096)
        entries = self._recorded(text)
        # same function bytes relocated 16 bytes later: the memo key pins
        # the start offset, so this must re-inspect
        moved = text[:1024] + b"\x90" * 16 + text[1024:2032] + text[2048:]
        assert len(moved) == len(text)
        session = _MemoSession(entries, moved, [0, 1040, 2048, 3072])
        assert session.lookup("f", 1040) is None

    def test_spill_window_change_never_hits(self):
        text = _blob(4096)
        entries = self._recorded(text)
        mutated = bytearray(text)
        mutated[2048 + SPILL_WINDOW - 1] ^= 0xFF
        session = _MemoSession(entries, bytes(mutated), list(self.BOUNDS))
        assert session.lookup("f", 1024) is None

    def test_change_outside_everything_observed_still_hits(self):
        text = _blob(4096)
        entries = self._recorded(text)
        mutated = bytearray(text)
        # inside [2048, 3072) but past the spill window, and not in the
        # recorded out-of-extent read window [3072, 4096)
        mutated[2048 + SPILL_WINDOW] ^= 0xFF
        session = _MemoSession(entries, bytes(mutated), list(self.BOUNDS))
        assert session.lookup("f", 1024) is not None

    def test_out_of_extent_read_window_invalidates(self):
        text = _blob(4096)
        entries = self._recorded(text)
        mutated = bytearray(text)
        mutated[3500] ^= 0x10  # the extent the original check peeked into
        session = _MemoSession(entries, bytes(mutated), list(self.BOUNDS))
        assert session.lookup("f", 1024) is None

    def test_policy_or_symtab_change_wipes_the_memo(self):
        text = _blob(4096)

        class _Sec:
            data = text

        class _Img:
            text_sections = [_Sec()]

        class _Tab:
            def __init__(self, d):
                self._d = d

            def items(self):
                return self._d.items()

        class _Ctx:
            image = _Img()

            def __init__(self, symbols):
                self.symtab = _Tab(symbols)

        memo = FunctionVerdictMemo()
        ctx = _Ctx({0: "a", 1024: "f", 2048: "g", 3072: "h"})
        s1 = memo.session(ctx, b"policy-v1")
        assert s1 is not None
        s1.record("f", 1024, 3, None, [], [])
        assert memo.session(ctx, b"policy-v1").lookup("f", 1024) is not None
        # different policy configuration: everything cached is stale
        assert memo.session(ctx, b"policy-v2").lookup("f", 1024) is None
        # different symbol table: likewise
        memo2 = FunctionVerdictMemo()
        s2 = memo2.session(ctx, b"p")
        s2.record("f", 1024, 3, None, [], [])
        ctx2 = _Ctx({0: "a", 1024: "f", 2048: "renamed", 3072: "h"})
        assert memo2.session(ctx2, b"p").lookup("f", 1024) is None


# --------------------------------------------------------------------------
# Delta scan: splice correctness and fallbacks
# --------------------------------------------------------------------------


class TestDeltaScan:
    def _index_for(self, text: bytes, boundaries: list[int]) -> DeltaIndex:
        scan = StreamScan.from_instructions(
            text, list(iter_decode(text, 0, len(text)))
        )
        return build_delta_index(DeltaIndex(), text, scan, boundaries)

    def test_identity_reuses_indexed_artifacts(self, demo_instrumented):
        img = read_elf(demo_instrumented.elf)
        text = img.text_sections[0]
        bounds = sorted(
            s.value - text.vaddr for s in img.function_symbols()
        )
        index = self._index_for(text.data, bounds)
        scan = delta_scan(index, text.data)
        assert scan is not None
        assert scan.instructions is index.instructions
        assert scan.chunks is index.chunks

    def test_one_byte_flip_splices_to_full_decode(self, demo_instrumented):
        img = read_elf(demo_instrumented.elf)
        text = img.text_sections[0]
        bounds = sorted(
            s.value - text.vaddr for s in img.function_symbols()
        )
        index = self._index_for(text.data, bounds)
        # flip a displacement/immediate byte so the edit keeps decoding:
        # find a mov with a >= 4-byte immediate and perturb its last byte
        target = None
        for insn in iter_decode(text.data, 0, len(text.data)):
            if (insn.mnemonic == "mov" and insn.target is None
                    and insn.num_immediate_bytes >= 4):
                target = insn
                break
        assert target is not None, "demo program must contain a mov imm32"
        mutated = bytearray(text.data)
        mutated[target.offset + target.length - 1] ^= 0x5A
        mutated = bytes(mutated)
        scan = delta_scan(index, mutated)
        if scan is None:
            pytest.skip("chunking did not re-align on this text; fallback path")
        assert _tokens(scan.instructions) == _tokens(
            iter_decode(mutated, 0, len(mutated))
        )

    def test_length_change_falls_back(self, demo_instrumented):
        img = read_elf(demo_instrumented.elf)
        text = img.text_sections[0]
        bounds = sorted(
            s.value - text.vaddr for s in img.function_symbols()
        )
        index = self._index_for(text.data, bounds)
        assert delta_scan(index, text.data[:-16]) is None

    def test_unpopulated_index_falls_back(self):
        assert delta_scan(DeltaIndex(), b"\x90" * 64) is None


# --------------------------------------------------------------------------
# Streamed provisioning differential: the frozen-oracle pins
# --------------------------------------------------------------------------


def _record_run(monkeypatch, *, streaming: bool, policies, binary,
                benchmark: str = "client"):
    """One provisioning run with every socket frame recorded."""
    frames: list[tuple[str, bytes]] = []
    original_send = sock_module.SimSocket.send

    def recording_send(self, message):
        frames.append((self.name, bytes(message)))
        return original_send(self, message)

    monkeypatch.setattr(sock_module.SimSocket, "send", recording_send)
    provider = small_provider(policies, streaming=streaming)
    client = EnclaveClient(
        binary, policies=policies, benchmark=benchmark, streaming=streaming,
    )
    result = provision(provider, client)
    monkeypatch.undo()
    return frames, result


class TestStreamedDifferential:
    def test_wire_verdict_and_meter_identical(
        self, monkeypatch, all_policies, demo_instrumented
    ):
        phased_frames, phased = _record_run(
            monkeypatch, streaming=False,
            policies=all_policies, binary=demo_instrumented.elf,
        )
        streamed_frames, streamed = _record_run(
            monkeypatch, streaming=True,
            policies=all_policies, binary=demo_instrumented.elf,
        )
        assert streamed_frames == phased_frames, \
            "streamed mode changed bytes on the wire"
        assert streamed.accepted and phased.accepted
        assert streamed.report.serialize() == phased.report.serialize()
        assert streamed.client_verdict == phased.client_verdict
        for phase in ("disassembly", "policy", "loading"):
            assert streamed.meter.phase_cycles(phase) == \
                phased.meter.phase_cycles(phase), phase
        assert streamed.meter.total_cycles == phased.meter.total_cycles
        # the speculative scan was adopted, not just tolerated
        assert streamed.outcome.disassembly.scan is not None

    def test_rejection_differential(
        self, monkeypatch, all_policies, demo_plain
    ):
        phased_frames, phased = _record_run(
            monkeypatch, streaming=False,
            policies=all_policies, binary=demo_plain.elf,
        )
        streamed_frames, streamed = _record_run(
            monkeypatch, streaming=True,
            policies=all_policies, binary=demo_plain.elf,
        )
        assert not streamed.accepted and not phased.accepted
        assert streamed_frames == phased_frames
        assert streamed.report.serialize() == phased.report.serialize()
        assert streamed.meter.total_cycles == phased.meter.total_cycles


class TestDeltaProvisioning:
    def _v2_one_immediate_flipped(self, raw: bytes) -> bytes:
        """Same binary with one mov-immediate byte flipped inside .text."""
        text = read_elf(raw).text_sections[0]
        for insn in iter_decode(text.data, 0, len(text.data)):
            if (insn.mnemonic == "mov" and insn.target is None
                    and insn.num_immediate_bytes >= 4):
                file_off = text.offset + insn.offset + insn.length - 1
                mutated = bytearray(raw)
                mutated[file_off] ^= 0x5A
                return bytes(mutated)
        raise AssertionError("no mov imm32 found in the demo text")

    def test_updated_binary_verdict_matches_phased_oracle(
        self, all_policies, demo_instrumented
    ):
        v1 = demo_instrumented.elf
        v2 = self._v2_one_immediate_flipped(v1)
        streamed = small_provider(all_policies, streaming=True)
        phased = small_provider(all_policies)
        runs = {}
        for name, provider, flag in (
            ("streamed", streamed, True), ("phased", phased, False),
        ):
            for version, raw in (("v1", v1), ("v2", v2)):
                client = EnclaveClient(
                    raw, policies=all_policies, streaming=flag,
                )
                runs[(name, version)] = provision(provider, client)
        for version in ("v1", "v2"):
            a, b = runs[("streamed", version)], runs[("phased", version)]
            assert a.accepted == b.accepted
            assert a.report.serialize() == b.report.serialize()
        # cumulative provider meters agree after the same two runs, so the
        # delta path charged tick-identically to the phased oracle
        assert streamed.machine.meter.total_cycles == \
            phased.machine.meter.total_cycles
        # and v2 actually rode the delta path (scan adopted on both runs)
        assert runs[("streamed", "v2")].outcome.disassembly.scan is not None

    def test_swapped_binary_is_reinspected_not_stale_accepted(
        self, all_policies, demo_instrumented, demo_plain
    ):
        """After an ACCEPT of v1, provisioning a *different* (and
        non-compliant) binary under the same benchmark label must be
        re-inspected and rejected — never served a stale verdict."""
        provider = small_provider(all_policies, streaming=True)
        first = provision(provider, EnclaveClient(
            demo_instrumented.elf, policies=all_policies, streaming=True,
        ))
        assert first.accepted
        second = provision(provider, EnclaveClient(
            demo_plain.elf, policies=all_policies, streaming=True,
        ))
        assert not second.accepted
        assert second.report.policies_failed


class TestStreamedFaultInjection:
    def test_seeded_plan_over_streamed_path_fails_closed(
        self, all_policies, demo_instrumented
    ):
        """Chaos parity for the streamed receive path: a persistent
        channel fault ends in a typed REJECT, never a false ACCEPT."""
        clock = FakeClock()
        plan = FaultPlan(
            [FaultSpec(hook="crypto.channel.recv", kind="bitflip",
                       max_triggers=None)],
            clock=clock, hang_seconds=10.0,
        )
        provider = small_provider(all_policies, streaming=True)
        client = EnclaveClient(
            demo_instrumented.elf, policies=all_policies, streaming=True,
        )
        with injected(plan):
            result = provision(
                provider, client,
                resilience=ResilienceConfig(max_retransmits=2, clock=clock),
            )
        assert plan.events, "the seeded fault never fired"
        assert not result.accepted
        assert result.error is not None

    def test_transient_drop_recovers_through_streamed_arq(
        self, all_policies, demo_instrumented
    ):
        clock = FakeClock()
        plan = FaultPlan(
            [FaultSpec(hook="crypto.channel.send", kind="drop",
                       after=3, max_triggers=1)],
            clock=clock,
        )
        provider = small_provider(all_policies, streaming=True)
        client = EnclaveClient(
            demo_instrumented.elf, policies=all_policies, streaming=True,
        )
        with injected(plan):
            result = provision(
                provider, client,
                resilience=ResilienceConfig(max_retransmits=3, clock=clock),
            )
        assert plan.events and plan.events[0].kind == "drop"
        assert result.accepted and result.error is None
