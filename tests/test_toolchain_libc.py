"""Synthetic musl: determinism, unit structure, hash database soundness."""

from __future__ import annotations

import pytest

from repro.crypto import sha256_fast
from repro.toolchain import MUSL_FUNCTIONS, build_libc
from repro.x86 import decode_all


class TestBuild:
    def test_deterministic(self, libc):
        again = build_libc.__wrapped__("1.0.5") if hasattr(build_libc, "__wrapped__") \
            else build_libc("1.0.5")
        assert again.blob == libc.blob

    def test_covers_all_names(self, libc):
        assert {f.name for f in libc.functions} == set(MUSL_FUNCTIONS)
        assert len(libc.offsets) == len(MUSL_FUNCTIONS)

    def test_units_are_bundle_aligned(self, libc):
        for fn in libc.functions:
            assert len(fn.code) % 32 == 0, fn.name
        for name, off in libc.offsets.items():
            assert off % 32 == 0, name

    def test_blob_is_concatenation_of_units(self, libc):
        assert libc.blob == b"".join(f.code for f in libc.functions)

    def test_units_decode_fully(self, libc):
        for fn in libc.functions[:40]:
            insns = decode_all(fn.code)
            assert insns, fn.name
            assert insns[-1].end == len(fn.code)
            assert len(insns) == fn.insn_count, fn.name

    def test_insn_count_total(self, libc):
        assert libc.insn_count == sum(f.insn_count for f in libc.functions)

    def test_units_are_call_free(self, libc):
        # leaf property: no callq anywhere (what makes GC hash-stable)
        for fn in libc.functions[:60]:
            assert not any(i.mnemonic == "callq" for i in decode_all(fn.code)), fn.name

    def test_big_functions_are_big(self, libc):
        printf = libc.function("printf")
        memcmp = libc.function("memcmp")
        assert printf.insn_count > 5 * memcmp.insn_count


class TestVersions:
    def test_versions_differ_everywhere(self, libc, libc_old):
        new = libc.reference_hashes()
        old = libc_old.reference_hashes()
        assert set(new) == set(old)
        assert all(new[k] != old[k] for k in new)

    def test_version_metadata(self, libc, libc_old):
        assert libc.version == "1.0.5"
        assert libc_old.version == "1.0.4"


class TestHashDatabase:
    def test_hashes_match_units(self, libc):
        db = libc.reference_hashes()
        for fn in libc.functions[:50]:
            assert db[fn.name] == sha256_fast(fn.code)

    def test_closure_is_subset_in_canonical_order(self, libc):
        roots = ["printf", "memcpy", "abort"]
        closure = libc.closure(roots)
        assert set(closure) == set(roots)
        canonical = [f.name for f in libc.functions]
        assert closure == [n for n in canonical if n in set(roots)]

    def test_closure_unknown_root(self, libc):
        with pytest.raises(KeyError):
            libc.closure(["not_a_libc_function"])

    def test_function_lookup(self, libc):
        assert libc.function("memcpy").name == "memcpy"
        with pytest.raises(KeyError):
            libc.function("nope")
