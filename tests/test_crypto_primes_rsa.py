"""Miller-Rabin and RSA: keygen, encrypt/decrypt, sign/verify, padding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    HmacDrbg,
    generate_keypair,
    generate_prime,
    is_probable_prime,
)
from repro.crypto.primes import SMALL_PRIMES
from repro.errors import CryptoError


class TestPrimes:
    def test_small_primes_table(self):
        assert SMALL_PRIMES[:10] == (2, 3, 5, 7, 11, 13, 17, 19, 23, 29)
        assert all(p < 1000 for p in SMALL_PRIMES)
        assert len(SMALL_PRIMES) == 168  # pi(1000)

    @pytest.mark.parametrize("p", [2, 3, 5, 97, 7919, 104729, 2**31 - 1])
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 7917, 2**31 - 3, 561, 41041])
    def test_known_composites(self, n):
        # 561 and 41041 are Carmichael numbers — Fermat liars, MR catches them
        assert not is_probable_prime(n)

    def test_generated_prime_has_exact_width(self):
        rng = HmacDrbg(b"primes")
        for bits in (16, 32, 64, 128):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_top_two_bits_set(self):
        # guarantees n = p*q has exactly 2k bits
        p = generate_prime(64, HmacDrbg(b"x"))
        assert p >> 62 == 0b11

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4, HmacDrbg(b"x"))


class TestRsa:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_keypair(512, HmacDrbg(b"rsa-test"))

    def test_modulus_width(self, keypair):
        assert keypair.n.bit_length() == 512
        assert keypair.p * keypair.q == keypair.n

    def test_keygen_deterministic(self):
        a = generate_keypair(256, HmacDrbg(b"seed"))
        b = generate_keypair(256, HmacDrbg(b"seed"))
        assert (a.n, a.d) == (b.n, b.d)

    def test_encrypt_decrypt_roundtrip(self, keypair):
        rng = HmacDrbg(b"enc")
        for msg in (b"", b"x", b"hello world", b"\x00\x01\x02", b"a" * 32):
            ct = keypair.public_key.encrypt(msg, rng)
            assert keypair.decrypt(ct) == msg

    def test_ciphertext_randomised(self, keypair):
        rng = HmacDrbg(b"enc")
        a = keypair.public_key.encrypt(b"msg", rng)
        b = keypair.public_key.encrypt(b"msg", rng)
        assert a != b  # PKCS#1 v1.5 random filler

    def test_plaintext_too_long(self, keypair):
        with pytest.raises(CryptoError):
            keypair.public_key.encrypt(b"x" * 64, HmacDrbg(b"r"))  # 512-bit cap is 53

    def test_tampered_ciphertext_fails(self, keypair):
        ct = bytearray(keypair.public_key.encrypt(b"secret", HmacDrbg(b"r")))
        ct[-1] ^= 1
        with pytest.raises(CryptoError):
            keypair.decrypt(bytes(ct))

    def test_wrong_length_ciphertext(self, keypair):
        with pytest.raises(CryptoError):
            keypair.decrypt(b"\x00" * 10)

    def test_sign_verify(self, keypair):
        sig = keypair.sign(b"message")
        assert keypair.public_key.verify(b"message", sig)
        assert not keypair.public_key.verify(b"other", sig)

    def test_signature_tamper(self, keypair):
        sig = bytearray(keypair.sign(b"message"))
        sig[0] ^= 0x80
        assert not keypair.public_key.verify(b"message", bytes(sig))

    def test_verify_wrong_length(self, keypair):
        assert not keypair.public_key.verify(b"m", b"short")

    def test_fingerprint_stable_and_distinct(self, keypair):
        other = generate_keypair(512, HmacDrbg(b"other"))
        fp = keypair.public_key.fingerprint()
        assert fp == keypair.public_key.fingerprint()
        assert fp != other.public_key.fingerprint()
        assert len(fp) == 32

    def test_modulus_constraints(self):
        with pytest.raises(CryptoError):
            generate_keypair(64, HmacDrbg(b"r"))  # too small
        with pytest.raises(CryptoError):
            generate_keypair(513, HmacDrbg(b"r"))  # odd

    @given(st.binary(min_size=0, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, msg):
        keypair = generate_keypair(512, HmacDrbg(b"prop"))
        ct = keypair.public_key.encrypt(msg, HmacDrbg(b"r" + msg))
        assert keypair.decrypt(ct) == msg
