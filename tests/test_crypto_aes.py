"""AES: FIPS-197 vectors, mode roundtrips, padding edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    Aes,
    aes_cbc_decrypt,
    aes_cbc_encrypt,
    aes_ctr,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.errors import CryptoError

# FIPS-197 appendix C known-answer vectors.
PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
VECTORS = [
    (bytes(range(16)), "69c4e0d86a7b0430d8cdb78070b4c55a"),
    (bytes(range(24)), "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (bytes(range(32)), "8ea2b7ca516745bfeafc49904b496089"),
]


@pytest.mark.parametrize("key,expected", VECTORS, ids=["aes128", "aes192", "aes256"])
def test_fips197_encrypt(key, expected):
    assert Aes(key).encrypt_block(PLAINTEXT).hex() == expected


@pytest.mark.parametrize("key,expected", VECTORS, ids=["aes128", "aes192", "aes256"])
def test_fips197_decrypt(key, expected):
    assert Aes(key).decrypt_block(bytes.fromhex(expected)) == PLAINTEXT


def test_bad_key_sizes():
    for n in (0, 15, 17, 31, 33):
        with pytest.raises(CryptoError):
            Aes(b"\x00" * n)


def test_bad_block_sizes():
    cipher = Aes(bytes(16))
    with pytest.raises(CryptoError):
        cipher.encrypt_block(b"short")
    with pytest.raises(CryptoError):
        cipher.decrypt_block(b"x" * 17)


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=32, max_size=32))
@settings(max_examples=50, deadline=None)
def test_block_roundtrip(block, key):
    cipher = Aes(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestPkcs7:
    def test_pad_lengths(self):
        for n in range(0, 33):
            padded = pkcs7_pad(b"x" * n)
            assert len(padded) % 16 == 0
            assert len(padded) > n  # always at least one pad byte
            assert pkcs7_unpad(padded) == b"x" * n

    def test_unpad_rejects_bad(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"")
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"x" * 15)
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"x" * 15 + b"\x00")   # pad byte 0
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"x" * 15 + b"\x11")   # pad byte 17
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"x" * 14 + b"\x01\x02")  # inconsistent run


class TestCbc:
    KEY = bytes(range(32))
    IV = b"\xab" * 16

    @given(st.binary(max_size=600))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, msg):
        ct = aes_cbc_encrypt(self.KEY, self.IV, msg)
        assert aes_cbc_decrypt(self.KEY, self.IV, ct) == msg

    def test_iv_matters(self):
        a = aes_cbc_encrypt(self.KEY, b"\x00" * 16, b"message")
        b = aes_cbc_encrypt(self.KEY, b"\x01" * 16, b"message")
        assert a != b

    def test_bad_iv(self):
        with pytest.raises(CryptoError):
            aes_cbc_encrypt(self.KEY, b"short", b"msg")

    def test_corrupt_ciphertext_detected_by_padding(self):
        ct = bytearray(aes_cbc_encrypt(self.KEY, self.IV, b"hello"))
        ct[-1] ^= 0xFF
        with pytest.raises(CryptoError):
            aes_cbc_decrypt(self.KEY, self.IV, bytes(ct))

    def test_empty_ciphertext(self):
        with pytest.raises(CryptoError):
            aes_cbc_decrypt(self.KEY, self.IV, b"")


class TestCtr:
    KEY = bytes(range(32))
    NONCE = b"\x01" * 8

    @given(st.binary(max_size=600))
    @settings(max_examples=40, deadline=None)
    def test_symmetric(self, msg):
        ct = aes_ctr(self.KEY, self.NONCE, msg)
        assert aes_ctr(self.KEY, self.NONCE, ct) == msg

    def test_keystream_is_counter_based(self):
        # Encrypting the second block alone with counter 1 must match the
        # tail of a two-block encryption (seekability).
        msg = b"A" * 32
        whole = aes_ctr(self.KEY, self.NONCE, msg)
        tail = aes_ctr(self.KEY, self.NONCE, msg[16:], initial_counter=1)
        assert whole[16:] == tail

    def test_nonce_size(self):
        with pytest.raises(CryptoError):
            aes_ctr(self.KEY, b"\x01" * 7, b"data")

    def test_non_block_lengths(self):
        for n in (1, 15, 17, 33):
            msg = bytes(range(n % 256)) * 1 + b"z" * max(0, n - n % 256)
            msg = msg[:n]
            ct = aes_ctr(self.KEY, self.NONCE, msg)
            assert len(ct) == n
            assert aes_ctr(self.KEY, self.NONCE, ct) == msg

    def test_empty(self):
        assert aes_ctr(self.KEY, self.NONCE, b"") == b""


class TestCtrXorInto:
    """The zero-copy receive primitive must equal ctr_xor byte-for-byte."""

    KEY = bytes(range(32))
    NONCE = b"\x02" * 8

    def _cipher(self):
        from repro.crypto.aes import Aes

        return Aes(self.KEY)

    @given(st.binary(max_size=600), st.integers(min_value=0, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_matches_ctr_xor_at_any_offset(self, msg, offset):
        from repro.crypto.aes import ctr_xor, ctr_xor_into

        cipher = self._cipher()
        expected = ctr_xor(cipher, self.NONCE, msg)
        out = bytearray(offset + len(msg) + 16)
        tail = bytes(out[offset + len(msg):])
        n = ctr_xor_into(cipher, self.NONCE, msg, out, offset)
        assert n == len(msg)
        assert bytes(out[offset:offset + len(msg)]) == expected
        assert bytes(out[:offset]) == b"\x00" * offset  # no prefix damage
        assert bytes(out[offset + len(msg):]) == tail   # no suffix damage

    def test_windowed_counters_match_whole_message(self):
        from repro.crypto.aes import ctr_xor, ctr_xor_into

        cipher = self._cipher()
        msg = bytes((i * 7) % 256 for i in range(200))
        expected = ctr_xor(cipher, self.NONCE, msg)
        out = bytearray(len(msg))
        off = 0
        for start in range(0, len(msg), 48):
            piece = msg[start:start + 48]
            ctr_xor_into(cipher, self.NONCE, piece, out, off,
                         initial_counter=start // 16)
            off += len(piece)
        assert bytes(out) == expected
