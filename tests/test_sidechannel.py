"""The controlled-channel limitation, demonstrated (paper section 6).

EnGarde's threat model explicitly excludes page-level side channels; these
tests make the exclusion concrete: a policy-compliant, sealed enclave
still leaks its secret-dependent *page access pattern* to a malicious OS.
"""

from __future__ import annotations

import pytest

from repro.core import EnclaveClient, PolicyRegistry, provision
from repro.core.policies import LibraryLinkingPolicy
from repro.core.runtime import EnclaveMemoryBus
from repro.sgx.sidechannel import PageAccessTracer
from repro.toolchain import Compiler, CompilerFlags, FunctionSpec, ProgramSpec, link
from repro.x86.interp import Interpreter
from tests.conftest import small_provider


def _victim_binary(libc):
    """main() calls secret_a or secret_b depending on a byte in .data —
    the two callees are padded onto *different pages*."""
    from repro.toolchain.codegen import CompiledFunction
    from repro.x86 import Assembler, Mem, RAX, RCX

    asm = Assembler()
    take_b = asm.label("take_b")
    done = asm.label("done")
    asm.mov_load_symbol("secret_flag", RAX)
    asm.alu_imm("cmp", 0, RAX)
    asm.jcc_label("jne", take_b)
    asm.call_symbol("secret_a")
    asm.jmp_label(done)
    asm.bind(take_b)
    asm.call_symbol("secret_b")
    asm.bind(done)
    asm.ret()
    main = CompiledFunction("main", asm.finish(), asm.instruction_count,
                            list(asm.external_fixups))

    def leaf(name: str, n_ops: int) -> CompiledFunction:
        a = Assembler()
        for _ in range(n_ops):
            a.mov_imm(1, RCX)
            a.mov_imm(2, RAX)
            a.alu_rr("add", RCX, RAX)
        a.ret()
        return CompiledFunction(name, a.finish(), a.instruction_count)

    spec = ProgramSpec(name="victim", functions=[FunctionSpec("main")])
    program = Compiler(CompilerFlags()).compile(spec)
    program.functions = [f for f in program.functions if f.name != "main"]
    # page-sized separators keep the two secret leaves on distinct pages
    program.functions += [
        main,
        leaf("pad_a", 500), leaf("secret_a", 40),
        leaf("pad_b", 500), leaf("secret_b", 40),
    ]
    from repro.toolchain.ir import DataObject

    program.data_objects.append(DataObject("secret_flag", 8))
    return link(program, libc)


def _run_traced(libc, secret_byte: int):
    binary = _victim_binary(libc)
    policies = PolicyRegistry([LibraryLinkingPolicy(libc.reference_hashes())])
    provider = small_provider(policies)
    result = provision(provider, EnclaveClient(binary.elf, policies=policies))
    assert result.accepted
    loaded = result.outcome.loaded
    enclave = result.runtime.enclave

    # the client's own (legitimate) runtime input: set the secret
    flag_vaddr = loaded.load_bias + binary.symbols["secret_flag"]
    enclave.write(flag_vaddr, bytes([secret_byte]) + b"\x00" * 7)

    # the malicious OS interposes on every access at page granularity
    tracer = PageAccessTracer(EnclaveMemoryBus(enclave))
    interp = Interpreter(tracer, fuel=100_000,
                         fs_base_read=lambda off, n: b"\x00" * n)
    from repro.x86.interp import HaltExecution

    try:
        interp.run(loaded.entry, loaded.stack_top)
    except HaltExecution:
        pass
    return tracer, binary, loaded


class TestControlledChannel:
    def test_contents_stay_encrypted_but_pattern_leaks(self, libc):
        trace_a, binary, loaded = _run_traced(libc, secret_byte=0)
        trace_b, _, _ = _run_traced(libc, secret_byte=1)
        # the page-access signatures differ -> the OS learns the secret
        assert trace_a.signature() != trace_b.signature()

    def test_leak_identifies_the_called_function(self, libc):
        trace_a, binary, loaded = _run_traced(libc, secret_byte=0)
        trace_b, binary_b, loaded_b = _run_traced(libc, secret_byte=1)

        def pages_of(symbols, loaded_img, name):
            return (loaded_img.load_bias + symbols[name]) & ~0xFFF

        a_page = pages_of(binary.symbols, loaded, "secret_a")
        b_page = pages_of(binary_b.symbols, loaded_b, "secret_b")
        assert a_page in trace_a.code_pages_touched()
        assert b_page in trace_b.code_pages_touched()
        assert b_page not in trace_a.code_pages_touched() or \
            a_page not in trace_b.code_pages_touched()

    def test_trace_collapses_consecutive_accesses(self, libc):
        tracer, _, _ = _run_traced(libc, secret_byte=0)
        sig = tracer.signature()
        assert all(x != y for x, y in zip(sig, sig[1:]))

    def test_channel_exists_despite_full_protections(self, libc):
        """The enclave is policy-checked, W^X-pinned, and sealed — the
        channel is orthogonal to everything EnGarde enforces."""
        tracer, _, loaded = _run_traced(libc, secret_byte=1)
        assert loaded.executable_pages  # protections applied
        assert len(tracer.trace) > 3    # and the OS still saw the pattern
