"""Extent-split inspection must be indistinguishable from serial.

The contract under test (see :mod:`repro.core.extent`): for ANY binary
and ANY boundary set — function starts, arbitrary instruction
boundaries, byte offsets that split instructions, degenerate one-part
plans — ``inspect_extent_split`` produces the same report wire bytes
and the same cumulative + per-phase CycleMeter ticks as
``EnGarde.inspect``.  When the merge cannot reproduce the serial
pipeline exactly it must *fall back* (and say why), never diverge.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EnGarde, PolicyRegistry
from repro.core.extent import (
    DEFAULT_MIN_EXTENT_BYTES,
    inspect_extent_split,
    plan_extent_split,
    scan_extent,
)
from repro.elf import read_elf
from repro.faults import FaultPlan, FaultSpec, injected
from repro.sgx.cpu import CycleMeter

from tests.conftest import compile_demo


@pytest.fixture(scope="module")
def instrumented_elf(libc):
    return compile_demo(libc, stack_protector=True, ifcc=True, name="ext").elf


@pytest.fixture(scope="module")
def plain_elf(libc):
    return compile_demo(libc, name="extplain").elf


def _meter_state(meter: CycleMeter):
    return (
        meter.total.cycles,
        dict(meter.total.events),
        {p: (b.cycles, dict(b.events)) for p, b in meter.phases.items()},
    )


def assert_equivalent(all_policies, raw, **split_kw):
    """Serial vs extent-split: wire bytes + meter ticks, bit for bit."""
    serial = EnGarde(all_policies, CycleMeter())
    expected = serial.inspect(raw, benchmark="eq")
    split = EnGarde(all_policies, CycleMeter())
    result = inspect_extent_split(split, raw, benchmark="eq", **split_kw)
    assert result.outcome.report.serialize() == expected.report.serialize()
    assert _meter_state(split.meter) == _meter_state(serial.meter)
    return result


def _function_offsets(raw):
    image = read_elf(raw)
    text = image.text_sections[0]
    return sorted(
        {s.value - text.vaddr for s in image.function_symbols()}
    ), len(text.data)


# ------------------------------------------------------------ happy path


def test_split_is_exact_and_actually_splits(all_policies, instrumented_elf):
    result = assert_equivalent(
        all_policies, instrumented_elf, parts=3, min_extent_bytes=16
    )
    assert result.split
    assert result.extents >= 2


def test_split_exact_on_noncompliant_binary(all_policies, plain_elf):
    # plain build fails stack-protection: the failed-policy list, stats
    # ordering, and policy-phase charges must all merge identically
    result = assert_equivalent(
        all_policies, plain_elf, parts=3, min_extent_bytes=16
    )
    assert result.split
    assert not result.outcome.report.compliant


def test_split_exact_for_every_part_count(all_policies, instrumented_elf):
    for parts in (2, 3, 4, 7, 32):
        assert_equivalent(
            all_policies, instrumented_elf, parts=parts, min_extent_bytes=16
        )


def test_single_part_falls_back(all_policies, instrumented_elf):
    result = assert_equivalent(all_policies, instrumented_elf, parts=1)
    assert not result.split
    assert result.fallback_reason is not None


def test_fallback_reasons_are_reported(all_policies):
    engarde = EnGarde(all_policies, CycleMeter())
    result = inspect_extent_split(engarde, b"\x7fELF" + bytes(64))
    assert not result.split
    assert result.fallback_reason == "malformed ELF"


# ------------------------------------------- arbitrary partitions (hypothesis)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_arbitrary_function_start_partitions(
    all_policies, instrumented_elf, data
):
    """Any subset of the function-extent table is a valid partition."""
    offsets, _ = _function_offsets(instrumented_elf)
    interior = [o for o in offsets if o > 0]
    boundaries = data.draw(st.lists(st.sampled_from(interior), max_size=6))
    result = assert_equivalent(
        all_policies, instrumented_elf, boundaries=boundaries
    )
    if len(set(boundaries)) >= 1:
        # boundaries on function starts always stitch: no fallback
        assert result.split


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_arbitrary_byte_boundaries_never_diverge(
    all_policies, instrumented_elf, data
):
    """Byte offsets that split instructions or functions must fall back
    (decode stitch check / extent-local scan check), never diverge."""
    _, code_len = _function_offsets(instrumented_elf)
    boundaries = data.draw(
        st.lists(st.integers(min_value=0, max_value=code_len + 16), max_size=4)
    )
    assert_equivalent(all_policies, instrumented_elf, boundaries=boundaries)


def test_instruction_boundary_mid_function_falls_back_exactly(
    all_policies, instrumented_elf
):
    """An extent edge on an instruction boundary inside a *checked*
    function decodes cleanly but makes that function's stack-protection
    scan impossible — the merge must detect it and fall back, bit-exact.
    (A cut inside an exempt libc function is harmless and may split.)"""
    engarde = EnGarde(all_policies, CycleMeter())
    disasm = engarde.disassembler.run(instrumented_elf)
    main_start = next(
        s.value - disasm.text_vaddr
        for s in disasm.image.function_symbols() if s.name == "main"
    )
    idx = disasm.instructions.index(
        next(i for i in disasm.instructions if i.offset == main_start)
    )
    mid_main = disasm.instructions[idx + 2].offset
    result = assert_equivalent(
        all_policies, instrumented_elf, boundaries=[mid_main]
    )
    assert not result.split


# ------------------------------------------------------ corrupted binaries


@pytest.mark.parametrize("stride", [211, 463])
def test_corrupted_text_bytes_stay_exact(
    all_policies, instrumented_elf, stride
):
    """Byte flips in the text section produce decode errors, validation
    failures, and policy violations — every one must merge (or fall
    back) to the exact serial verdict and charge sequence."""
    image = read_elf(instrumented_elf)
    text = bytes(image.text_sections[0].data)
    base = instrumented_elf.find(text[:64])
    assert base > 0
    stages = set()
    for rel in range(0, len(text), stride):
        raw = bytearray(instrumented_elf)
        raw[base + rel] ^= 0x9A
        serial = EnGarde(all_policies, CycleMeter())
        expected = serial.inspect(bytes(raw), benchmark="adv")
        split = EnGarde(all_policies, CycleMeter())
        result = inspect_extent_split(
            split, bytes(raw), benchmark="adv", parts=3, min_extent_bytes=16
        )
        assert (result.outcome.report.serialize()
                == expected.report.serialize())
        assert _meter_state(split.meter) == _meter_state(serial.meter)
        stages.add(expected.report.rejected_stage)
    # the sweep must actually exercise rejection paths, not just accepts
    assert "disasm" in stages


# ----------------------------------------------------------- fail closed


def test_decoder_fault_plan_disables_split(all_policies, instrumented_elf):
    """A fault plan watching the decoder fires per-instruction hooks the
    extent workers cannot replay: preflight must route serial."""
    plan = FaultPlan(
        [FaultSpec(hook="x86.decoder", kind="raise", after=10_000_000)]
    )
    engarde = EnGarde(all_policies, CycleMeter())
    with injected(plan):
        result = inspect_extent_split(engarde, instrumented_elf)
    assert not result.split
    assert result.fallback_reason == "decoder fault plan active"


def test_worker_crash_in_one_extent_fails_closed(
    all_policies, instrumented_elf
):
    """A crash while scanning one extent must propagate as a typed
    error — never a partial or silently-serial verdict."""

    class ExtentWorkerDied(RuntimeError):
        pass

    def crashing_run_scans(tasks):
        scans = [
            scan_extent(instrumented_elf, all_policies, t)
            for t in tasks[:-1]
        ]
        raise ExtentWorkerDied(f"extent {tasks[-1]['index']} crashed")

    engarde = EnGarde(all_policies, CycleMeter())
    with pytest.raises(ExtentWorkerDied):
        inspect_extent_split(
            engarde, instrumented_elf, parts=3, min_extent_bytes=16,
            run_scans=crashing_run_scans,
        )


def test_lost_scan_falls_back_not_partial(all_policies, instrumented_elf):
    """A dropped (None) scan result is a fallback, not a partial merge."""
    result = assert_equivalent(
        all_policies, instrumented_elf, parts=3, min_extent_bytes=16,
        run_scans=lambda tasks: [None] * len(tasks),
    )
    assert not result.split
    assert result.fallback_reason == "scan task lost"


# ----------------------------------------------------------- plan shape


def test_plan_prefers_balanced_function_cuts(all_policies, instrumented_elf):
    engarde = EnGarde(all_policies, CycleMeter())
    image, plan = plan_extent_split(
        engarde, instrumented_elf, parts=3, min_extent_bytes=16
    )
    assert image is not None
    offsets, code_len = _function_offsets(instrumented_elf)
    edges = [e for ext in plan.extents for e in ext]
    assert edges[0] == 0 and edges[-1] == code_len
    for _, cut in plan.extents[:-1]:
        assert cut in offsets  # every interior edge is a function start


def test_plan_respects_min_extent_bytes(all_policies, instrumented_elf):
    engarde = EnGarde(all_policies, CycleMeter())
    _, code_len = _function_offsets(instrumented_elf)
    min_bytes = DEFAULT_MIN_EXTENT_BYTES
    image, plan = plan_extent_split(
        engarde, instrumented_elf, parts=4, min_extent_bytes=min_bytes,
    )
    offsets, _ = _function_offsets(instrumented_elf)
    usable = [
        o for o in offsets
        if o >= min_bytes and code_len - o >= min_bytes
    ]
    if image is None:
        assert not usable  # no function start leaves both halves big enough
    else:
        assert all(e - s >= min_bytes for s, e in plan.extents)


def test_unoptimized_engine_never_splits(all_policies, instrumented_elf):
    engarde = EnGarde(all_policies, CycleMeter(), optimized=False)
    result = inspect_extent_split(engarde, instrumented_elf)
    assert not result.split
    assert result.fallback_reason == "reference (unoptimized) engine"
