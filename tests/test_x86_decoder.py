"""Decoder: paper sequences, metadata, operand structure, error paths."""

from __future__ import annotations

import pytest

from repro.errors import DecodeError
from repro.x86 import (
    EAX, ECX, RAX, RCX, RSP,
    Enc, Imm, Mem, Reg, decode_all, decode_one,
)


class TestPaperSequences:
    def test_stack_protector_idiom(self):
        code = (
            Enc.mov_load(Mem(seg="fs", disp=0x28), RAX)
            + Enc.mov_store(RAX, Mem(base=RSP))
            + Enc.alu_load("cmp", Mem(base=RSP), RAX)
            + Enc.jcc_rel8("jne", 5)
        )
        insns = decode_all(code)
        assert [i.mnemonic for i in insns] == ["mov", "mov", "cmp", "jne"]
        assert insns[0].reads_fs_offset(0x28)
        load_src, load_dst = insns[0].operands
        assert isinstance(load_src, Mem) and load_src.seg == "fs"
        assert isinstance(load_dst, Reg) and load_dst.num == 0
        assert insns[3].target == insns[3].end + 5

    def test_ifcc_idiom(self):
        code = (
            Enc.lea(Mem(rip_relative=True, disp=0x85C70), RAX)
            + Enc.alu_rr("sub", EAX, ECX)
            + Enc.alu_imm("and", 0x1FF8, RCX)
            + Enc.alu_rr("add", RAX, RCX)
            + Enc.call_rm(RCX)
        )
        insns = decode_all(code)
        assert [i.mnemonic for i in insns] == ["lea", "sub", "and", "add", "callq"]
        lea_mem = insns[0].operands[0]
        assert lea_mem.rip_relative and lea_mem.disp == 0x85C70
        sub_src, sub_dst = insns[1].operands
        assert sub_src.bits == 32 and sub_dst.bits == 32
        and_imm = insns[2].operands[0]
        assert isinstance(and_imm, Imm) and and_imm.value == 0x1FF8
        assert insns[4].is_indirect_call and not insns[4].is_direct_call

    def test_jump_table_entry(self):
        code = Enc.jmp_rel32(0x100) + Enc.nop(3)
        insns = decode_all(code)
        assert insns[0].mnemonic == "jmpq" and insns[0].is_direct_jump
        assert insns[0].length == 5
        assert insns[1].mnemonic == "nopl" and insns[1].length == 3


class TestMetadata:
    def test_nacl_byte_counts(self):
        insn = decode_one(Enc.mov_load(Mem(seg="fs", disp=0x28), RAX), 0)
        assert insn.num_prefix_bytes == 2      # fs override + REX.W
        assert insn.num_opcode_bytes == 1
        assert insn.num_displacement_bytes == 4
        assert insn.num_immediate_bytes == 0
        assert insn.has_modrm

    def test_imm_counting(self):
        insn = decode_one(Enc.mov_imm(0x11223344556677, RAX), 0)
        assert insn.num_immediate_bytes == 8
        insn = decode_one(Enc.alu_imm("sub", 8, RSP), 0)
        assert insn.num_immediate_bytes == 1

    def test_call_rel_counted_as_immediate(self):
        insn = decode_one(Enc.call_rel32(0x10), 0)
        assert insn.num_immediate_bytes == 4
        assert insn.is_direct_call and insn.target == 5 + 0x10

    def test_length_and_end(self):
        code = Enc.push(RAX) + Enc.ret()
        insns = decode_all(code)
        assert insns[0].length == 1 and insns[0].end == 1
        assert insns[1].offset == 1


class TestOperandStructure:
    def test_att_order_store(self):
        insn = decode_one(Enc.mov_store(RAX, Mem(base=RSP, disp=16)), 0)
        src, dst = insn.operands
        assert isinstance(src, Reg) and isinstance(dst, Mem)
        assert dst.disp == 16 and dst.base.num == 4

    def test_att_order_load(self):
        insn = decode_one(Enc.mov_load(Mem(base=RSP, disp=16), RAX), 0)
        src, dst = insn.operands
        assert isinstance(src, Mem) and isinstance(dst, Reg)

    def test_negative_displacement(self):
        insn = decode_one(Enc.mov_store(RAX, Mem(base=RSP, disp=-8)), 0)
        assert insn.operands[1].disp == -8

    def test_width_from_rex(self):
        assert decode_one(Enc.mov_rr(RAX, RCX), 0).operands[0].bits == 64
        assert decode_one(Enc.mov_rr(EAX, ECX), 0).operands[0].bits == 32

    def test_sib_decoding(self):
        insn = decode_one(Enc.mov_load(Mem(base=RAX, index=RCX, scale=4), RSP), 0)
        mem = insn.operands[0]
        assert mem.base.num == 0 and mem.index.num == 1 and mem.scale == 4

    def test_group_opcodes(self):
        assert decode_one(Enc.unary("neg", RAX), 0).mnemonic == "neg"
        assert decode_one(Enc.unary("div", RCX), 0).mnemonic == "div"
        assert decode_one(Enc.incdec("inc", RAX), 0).mnemonic == "inc"
        assert decode_one(Enc.incdec("dec", RAX), 0).mnemonic == "dec"
        assert decode_one(Enc.shift_imm("sar", 3, RAX), 0).mnemonic == "sar"


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(DecodeError):
            decode_one(b"\x06", 0)  # push es: invalid in 64-bit mode

    def test_truncated_instruction(self):
        code = Enc.mov_imm(0x1122334455667788, RAX)
        with pytest.raises(DecodeError):
            decode_one(code[:-2], 0)

    def test_truncated_modrm(self):
        with pytest.raises(DecodeError):
            decode_one(b"\x48\x8b", 0)

    def test_duplicate_prefixes(self):
        with pytest.raises(DecodeError):
            decode_one(b"\x64\x64\x8b\x04\x25\x00\x00\x00\x00", 0)

    def test_opsize_prefix_on_alu_rejected(self):
        # 66 prefix is only accepted on the canonical NOP forms
        with pytest.raises(DecodeError):
            decode_one(b"\x66\x01\xc8", 0)

    def test_lea_register_operand_rejected(self):
        with pytest.raises(DecodeError):
            decode_one(b"\x48\x8d\xc1", 0)

    def test_region_overrun(self):
        code = Enc.call_rel32(0)
        with pytest.raises(DecodeError):
            decode_all(code[:3])


class TestNops:
    def test_all_canonical_nops_decode(self):
        for n in range(1, 10):
            insns = decode_all(Enc.nop(n))
            assert len(insns) == 1
            assert insns[0].mnemonic in ("nop", "nopl")
            assert insns[0].length == n

    def test_misc_opcodes(self):
        for encoded, mnemonic in [
            (Enc.ud2(), "ud2"), (Enc.int3(), "int3"), (Enc.hlt(), "hlt"),
            (Enc.syscall(), "syscall"), (Enc.leave(), "leave"),
        ]:
            assert decode_one(encoded, 0).mnemonic == mnemonic


class TestCmovXchgDecode:
    def test_cmov_all_conditions_roundtrip(self):
        from repro.x86 import RAX, RCX

        for cond in ("o", "no", "b", "ae", "e", "ne", "be", "a",
                     "s", "ns", "p", "np", "l", "ge", "le", "g"):
            insn = decode_one(Enc.cmov(cond, RCX, RAX), 0)
            assert insn.mnemonic == f"cmov{cond}"
            assert insn.operands == (RCX, RAX)

    def test_xchg_roundtrip(self):
        from repro.x86 import RAX, RCX

        insn = decode_one(Enc.xchg_rr(RAX, RCX), 0)
        assert insn.mnemonic == "xchg"
        insn = decode_one(Enc.xchg_rm(RAX, Mem(base=RSP, disp=8)), 0)
        assert insn.mnemonic == "xchg"
        assert insn.operands[1].disp == 8


class TestStreamDecoder:
    """Chunk-resumable decode must be indistinguishable from whole-buffer
    decode — tokens and error text — at every possible split point."""

    def _code(self) -> bytes:
        from repro.x86 import RAX, RSP

        return (
            Enc.mov_load(Mem(seg="fs", disp=0x28), RAX)
            + Enc.mov_store(RAX, Mem(base=RSP))
            + Enc.alu_load("cmp", Mem(base=RSP), RAX)
            + Enc.jcc_rel8("jne", 5)
            + Enc.lea(Mem(rip_relative=True, disp=0x85C70), RAX)
            + Enc.alu_rr("sub", EAX, ECX)
            + Enc.alu_imm("and", 0x1FF8, RCX)
            + Enc.call_rm(RCX)
            + Enc.mov_imm(0x1122334455667788, RAX)
            + Enc.nop(9) + Enc.nop(3) + Enc.nop(1)
            + Enc.jmp_rel32(0x100)
        )

    @staticmethod
    def _stream(code: bytes, splits) -> list:
        from repro.x86 import StreamDecoder

        dec = StreamDecoder()
        out = []
        prev = 0
        for cut in splits:
            out += dec.feed(code[prev:cut])
            prev = cut
        out += dec.feed(code[prev:])
        out += dec.finish(len(code))
        return out

    @staticmethod
    def _tokens(insns):
        return [(i.offset, i.mnemonic, bytes(i.raw)) for i in insns]

    def test_every_split_point_token_identical(self):
        code = self._code()
        oracle = self._tokens(decode_all(code))
        for cut in range(len(code) + 1):
            got = self._tokens(self._stream(code, [cut]))
            assert got == oracle, f"split at byte {cut} diverged"

    def test_byte_at_a_time_feed(self):
        code = self._code()
        assert self._tokens(self._stream(code, range(1, len(code)))) \
            == self._tokens(decode_all(code))

    def test_split_inside_prefix_and_immediate(self):
        code = self._code()
        oracle = self._tokens(decode_all(code))
        # the fs-prefixed load starts at 0 (prefix bytes 0..1); the
        # 10-byte mov imm64 sits mid-buffer — split inside both at once
        imm_start = next(
            i.offset for i in decode_all(code) if i.mnemonic == "mov"
            and i.num_immediate_bytes == 8
        )
        assert self._tokens(self._stream(code, [1, imm_start + 3])) == oracle

    def test_error_text_identical_to_whole_buffer(self):
        # a region ending mid-instruction must raise the same DecodeError
        # whether the bytes arrived chunked or at once
        code = self._code()[:-2]
        with pytest.raises(DecodeError) as whole:
            decode_all(code)
        with pytest.raises(DecodeError) as streamed:
            self._stream(code, range(3, len(code), 3))
        assert str(streamed.value) == str(whole.value)

    def test_feed_after_finish_raises(self):
        from repro.x86 import StreamDecoder

        dec = StreamDecoder()
        dec.feed(Enc.nop(1))
        dec.finish()
        with pytest.raises(ValueError):
            dec.feed(b"\x90")
