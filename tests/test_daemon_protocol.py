"""Protocol battery for the inspection daemon.

Hostile and broken clients: truncated frames, oversized lengths, bad
magic/version bytes, out-of-order verbs, mid-handshake disconnects,
garbage key-wraps, and seeded fault plans firing inside the daemon's
own read/write paths.  Everything must surface as a typed error (the
chaos oracle's ``ExcName: detail`` shape) or a clean close — never a
hang, never a false ACCEPT.
"""

from __future__ import annotations

import re
import struct
import time

import pytest

from repro.core import EnGarde
from repro.core.provisioning import ResilienceConfig
from repro.crypto import HmacDrbg, generate_keypair
from repro.errors import NetError
from repro.faults.chaos import _TYPED_ERROR
from repro.faults.clock import FakeClock
from repro.faults.hooks import injected
from repro.faults.plan import FaultPlan
from repro.service import generate_variant_corpus
from repro.service import protocol as proto

from tests.conftest import daemon_client, small_daemon

CORPUS_SIZE = 8
#: any single negative-path exchange must finish well inside this
MAX_WALL_SECONDS = 30.0


@pytest.fixture(scope="module")
def corpus(libc):
    return generate_variant_corpus(CORPUS_SIZE, libc=libc)


@pytest.fixture(scope="module")
def baseline(corpus, all_policies):
    engarde = EnGarde(all_policies)
    return {
        label: engarde.inspect(raw, benchmark=label).report.serialize()
        for label, raw in corpus
    }


@pytest.fixture()
def daemon(all_policies):
    d = small_daemon(all_policies, read_timeout=2.0)
    yield d
    d.stop()


def _expect_typed_error(sock, pattern: str) -> tuple[str, str]:
    """The daemon must answer with ``ERROR`` carrying a typed message."""
    rtype, body = proto.decode_message(sock.recv())
    assert rtype == proto.T_ERROR, proto.MESSAGE_TYPES.get(rtype)
    stage, error = proto.decode_error(body)
    assert _TYPED_ERROR.match(error), error
    assert re.search(pattern, error), (pattern, error)
    return stage, error


def _await_cleanup(daemon, *, timeout: float = 10.0) -> None:
    """The connection must be reaped and its pool entry returned."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with daemon._conn_lock:
            live = len(daemon._connections)
        if live == 0 and daemon.pool.stats()["available"] >= daemon.pool.size:
            return
        time.sleep(0.02)
    raise AssertionError("daemon failed to reap a broken connection")


class TestMalformedFrames:
    def test_truncated_header(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(b"EG")
        _expect_typed_error(sock, "truncated message")
        _await_cleanup(daemon)

    def test_bad_magic(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(b"XX" + bytes([proto.PROTOCOL_VERSION, proto.T_HELLO])
                  + struct.pack(">I", 0))
        _expect_typed_error(sock, "bad magic")

    def test_version_skew(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(b"EG" + bytes([proto.PROTOCOL_VERSION + 1, proto.T_HELLO])
                  + struct.pack(">I", 0))
        _expect_typed_error(sock, "unsupported protocol version")

    def test_unknown_verb(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(b"EG" + bytes([proto.PROTOCOL_VERSION, 0x6F])
                  + struct.pack(">I", 0))
        _expect_typed_error(sock, "unknown message type")

    def test_oversized_declared_length(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(b"EG" + bytes([proto.PROTOCOL_VERSION, proto.T_SUBMIT])
                  + struct.pack(">I", proto.MAX_BODY + 1) + b"tiny")
        _expect_typed_error(sock, "exceeds protocol limit")

    def test_header_body_length_mismatch(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        # declares 64 body bytes, carries 3 — a frame truncated in transit
        sock.send(b"EG" + bytes([proto.PROTOCOL_VERSION, proto.T_HELLO])
                  + struct.pack(">I", 64) + b"abc")
        _expect_typed_error(sock, "length mismatch")

    def test_trailing_garbage_after_body(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(proto.encode_message(proto.T_HELLO) + b"\x00garbage")
        _expect_typed_error(sock, "length mismatch")

    def test_oversized_frame_rejected_by_transport(self, daemon):
        from repro.net.sock import MAX_MESSAGE

        sock = daemon.connect_inproc(timeout=5.0)
        with pytest.raises(NetError, match="exceeds frame limit"):
            sock.send(b"\x00" * (MAX_MESSAGE + 1))


class TestOrderliness:
    def test_submit_before_attest_is_rejected(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(proto.encode_message(
            proto.T_SUBMIT, proto.encode_submit("sneak", b"\x7fELF")
        ))
        _expect_typed_error(sock, "out-of-order SUBMIT")

    def test_response_verb_from_client_is_rejected(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(proto.encode_message(proto.T_VERDICT, b"\x00fake"))
        _expect_typed_error(sock, "protocol violation")

    def test_second_attest_inside_channel_is_rejected(
        self, daemon, all_policies
    ):
        client = daemon_client(daemon, all_policies)
        client.open()
        client._channel.send(proto.encode_message(proto.T_ATTEST, b"x" * 16))
        rtype, body = proto.decode_message(client._channel.recv())
        assert rtype == proto.T_ERROR
        _, error = proto.decode_error(body)
        assert _TYPED_ERROR.match(error)
        assert "out-of-order ATTEST" in error
        client._abandon()

    def test_bad_challenge_length_is_rejected(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(proto.encode_message(proto.T_ATTEST, b"tiny"))
        _expect_typed_error(sock, "challenge must be 8..64 bytes")
        _await_cleanup(daemon)


class TestHandshakeAbuse:
    def test_disconnect_mid_handshake_is_reaped(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(proto.encode_message(proto.T_ATTEST, b"c" * 16))
        rtype, body = proto.decode_message(sock.recv())
        assert rtype == proto.T_ATTEST_OK
        proto.quote_from_bytes(body)  # a well-formed quote came back
        assert sock.recv().startswith(b"EG-PUBKEY")
        # vanish instead of sending the key wrap
        sock.close()
        _await_cleanup(daemon)

    def test_garbage_keywrap_is_typed_error(self, daemon):
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(proto.encode_message(proto.T_ATTEST, b"c" * 16))
        rtype, _ = proto.decode_message(sock.recv())
        assert rtype == proto.T_ATTEST_OK
        sock.recv()  # server public key
        sock.send(b"EG-NOT-A-KEYWRAP" + b"\x00" * 32)
        _expect_typed_error(sock, "key-wrap")
        _await_cleanup(daemon)

    def test_silent_client_is_timed_out_not_hung(self, daemon):
        t0 = time.monotonic()
        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(proto.encode_message(proto.T_ATTEST, b"c" * 16))
        proto.decode_message(sock.recv())
        sock.recv()
        # ...then say nothing: the daemon's read timeout must reap us
        _await_cleanup(daemon)
        assert time.monotonic() - t0 < MAX_WALL_SECONDS

    def test_record_garbage_inside_channel_fails_closed(
        self, daemon, all_policies
    ):
        client = daemon_client(daemon, all_policies)
        client.open()
        # raw bytes that are not a valid channel record
        client._sock.send(b"\x17\x03garbage-record")
        # daemon answers a typed error in plaintext and hangs up
        rtype, body = proto.decode_message(client._sock.recv())
        assert rtype == proto.T_ERROR
        _, error = proto.decode_error(body)
        assert _TYPED_ERROR.match(error)
        client._abandon()
        _await_cleanup(daemon)


class TestSdkVerification:
    def test_wrong_device_key_fails_closed_without_retry(
        self, daemon, all_policies, corpus
    ):
        from repro.service import InspectionClient

        impostor = generate_keypair(768, HmacDrbg(b"impostor")).public_key
        client = InspectionClient(
            all_policies, impostor, daemon.connect_inproc, timeout=5.0,
            resilience=ResilienceConfig(
                max_retransmits=3, backoff_base=0.0, clock=FakeClock()
            ),
        )
        label, raw = corpus[0]
        verdict = client.inspect(raw, label)
        assert verdict.report is None
        assert verdict.error.startswith("AttestationError:")
        # attestation failures must not burn the retry budget
        assert verdict.attempts == 1

    def test_policy_digest_mismatch_fails_closed(self, daemon, libc, corpus):
        from repro.core import PolicyRegistry
        from repro.harness.runner import make_policy
        from repro.service import InspectionClient

        other = PolicyRegistry([make_policy("stack-protection", libc)])
        client = InspectionClient(
            other, daemon.pool.quoting_enclave.device_public_key,
            daemon.connect_inproc, timeout=5.0,
        )
        label, raw = corpus[0]
        verdict = client.inspect(raw, label)
        assert verdict.report is None
        assert _TYPED_ERROR.match(verdict.error)
        assert "policy digest mismatch" in verdict.error


class TestSeededFaultPlans:
    """The daemon's accept/read/write paths under the 12-hook vocabulary.

    Per seed: a randomized plan armed over the socket, channel, and
    batch hook sites while an SDK client walks the corpus.  The oracle
    is ``run_soak``'s: every outcome is either byte-identical to the
    clean serial baseline or a typed error — and the pass stays inside
    a hard wall bound.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_seeded_plan_yields_typed_outcomes_only(
        self, daemon, all_policies, corpus, baseline, seed
    ):
        plan = FaultPlan.randomized(
            seed=seed,
            hooks=(
                "net.sock.send", "net.sock.recv",
                "crypto.channel.send", "crypto.channel.recv",
                "core.provisioning.handshake",
                "service.batch.worker", "service.batch.verdict",
            ),
            n_specs=6,
            probability=0.3,
            clock=FakeClock(),
            hang_seconds=30.0,
        )
        client = daemon_client(
            daemon, all_policies, timeout=1.0,
            resilience=ResilienceConfig(
                max_retransmits=2, backoff_base=0.0, clock=FakeClock()
            ),
        )
        t0 = time.monotonic()
        with injected(plan):
            outcomes = [
                (label, client.inspect(raw, label)) for label, raw in corpus
            ]
            client.close()
        assert time.monotonic() - t0 < MAX_WALL_SECONDS, "protocol hang"
        for label, v in outcomes:
            if v.report is not None:
                assert v.wire == baseline[label], label  # no corruption
            else:
                assert v.error is not None
                assert _TYPED_ERROR.match(v.error), (label, v.error)
        # after the storm the daemon still serves clean clients
        clean = daemon_client(daemon, all_policies)
        label, raw = corpus[0]
        verdict = clean.inspect(raw, label)
        assert verdict.wire == baseline[label]
        clean.close()


def _expect_channel_error(channel, pattern: str) -> str:
    """The daemon must answer an authenticated typed ERROR on the channel."""
    rtype, body = proto.decode_message(channel.recv())
    assert rtype == proto.T_ERROR, proto.MESSAGE_TYPES.get(rtype)
    _, error = proto.decode_error(body)
    assert _TYPED_ERROR.match(error), error
    assert re.search(pattern, error), (pattern, error)
    return error


class TestStreamedSubmitCodec:
    def test_begin_roundtrip(self):
        import hashlib

        digest = hashlib.sha256(b"payload").digest()
        body = proto.encode_submit_begin("app/v2", 1234, 5, digest)
        assert proto.decode_submit_begin(body) == ("app/v2", 1234, 5, digest)

    def test_begin_rejects_bad_fields(self):
        from repro.errors import ProtocolError

        digest = b"\x00" * 32
        with pytest.raises(ProtocolError):
            proto.encode_submit_begin("x", 10, 0, digest)
        with pytest.raises(ProtocolError):
            proto.encode_submit_begin("x", proto.MAX_BODY + 1, 1, digest)
        with pytest.raises(ProtocolError):
            proto.encode_submit_begin("x", 10, 1, b"short")
        with pytest.raises(ProtocolError):
            proto.decode_submit_begin(b"\x00\x01")
        good = proto.encode_submit_begin("label", 10, 1, digest)
        with pytest.raises(ProtocolError):
            proto.decode_submit_begin(good[:-1])  # truncated label

    def test_chunk_ack_roundtrip(self):
        from repro.errors import ProtocolError

        assert proto.decode_chunk_ack(proto.encode_chunk_ack(0)) == 0
        assert proto.decode_chunk_ack(proto.encode_chunk_ack(2**40)) == 2**40
        with pytest.raises(ProtocolError):
            proto.decode_chunk_ack(b"\x00" * 7)


class TestStreamedSubmit:
    """SUBMIT_BEGIN/SUBMIT_CHUNK: same verdict bytes, fail-closed stream."""

    def test_streamed_verdict_identical_to_whole_body(
        self, daemon, all_policies, corpus, baseline
    ):
        client = daemon_client(daemon, all_policies)
        label, raw = corpus[0]
        streamed = client.inspect_streamed(raw, label, chunk_size=1024)
        assert streamed.report is not None, streamed.error
        assert streamed.wire == baseline[label]
        # and the daemon's caches are shared with the whole-body path
        again = client.inspect(raw, label)
        assert again.source == "cache"
        assert again.wire == streamed.wire
        client.close()

    def test_single_chunk_stream(self, daemon, all_policies, corpus, baseline):
        client = daemon_client(daemon, all_policies)
        label, raw = corpus[1]
        verdict = client.inspect_streamed(raw, label, chunk_size=len(raw) + 1)
        assert verdict.report is not None, verdict.error
        assert verdict.wire == baseline[label]
        client.close()

    def test_streamed_verbs_before_attest_are_rejected(self, daemon):
        import hashlib

        sock = daemon.connect_inproc(timeout=5.0)
        sock.send(proto.encode_message(
            proto.T_SUBMIT_BEGIN,
            proto.encode_submit_begin(
                "sneak", 4, 1, hashlib.sha256(b"ELF!").digest()
            ),
        ))
        _expect_typed_error(sock, "out-of-order SUBMIT_BEGIN")
        sock2 = daemon.connect_inproc(timeout=5.0)
        sock2.send(proto.encode_message(proto.T_SUBMIT_CHUNK, b"ELF!"))
        _expect_typed_error(sock2, "out-of-order SUBMIT_CHUNK")

    def test_chunk_without_begin_fails_closed(self, daemon, all_policies):
        client = daemon_client(daemon, all_policies)
        client.open()
        client._channel.send(proto.encode_message(proto.T_SUBMIT_CHUNK, b"x"))
        _expect_channel_error(client._channel, "no SUBMIT_BEGIN")
        client._abandon()
        _await_cleanup(daemon)

    def test_begin_inside_begin_fails_closed(self, daemon, all_policies):
        import hashlib

        client = daemon_client(daemon, all_policies)
        client.open()
        begin = proto.encode_submit_begin(
            "app", 8, 2, hashlib.sha256(b"\x00" * 8).digest()
        )
        client._channel.send(proto.encode_message(proto.T_SUBMIT_BEGIN, begin))
        rtype, ack = proto.decode_message(client._channel.recv())
        assert rtype == proto.T_SUBMIT_OK
        assert proto.decode_chunk_ack(ack) == 0
        client._channel.send(proto.encode_message(proto.T_SUBMIT_BEGIN, begin))
        _expect_channel_error(
            client._channel, "streamed submission is already in flight"
        )
        client._abandon()
        _await_cleanup(daemon)

    def test_whole_body_submit_inside_stream_fails_closed(
        self, daemon, all_policies
    ):
        import hashlib

        client = daemon_client(daemon, all_policies)
        client.open()
        client._channel.send(proto.encode_message(
            proto.T_SUBMIT_BEGIN,
            proto.encode_submit_begin(
                "app", 8, 2, hashlib.sha256(b"\x00" * 8).digest()
            ),
        ))
        proto.decode_message(client._channel.recv())
        client._channel.send(proto.encode_message(
            proto.T_SUBMIT, proto.encode_submit("app", b"\x7fELF")
        ))
        _expect_channel_error(client._channel, "whole-body SUBMIT inside")
        client._abandon()
        _await_cleanup(daemon)

    def test_digest_mismatch_fails_closed(self, daemon, all_policies, corpus):
        import hashlib

        client = daemon_client(daemon, all_policies)
        client.open()
        _, raw = corpus[0]
        wrong = hashlib.sha256(raw + b"tamper").digest()
        client._channel.send(proto.encode_message(
            proto.T_SUBMIT_BEGIN,
            proto.encode_submit_begin("app", len(raw), 1, wrong),
        ))
        rtype, _ = proto.decode_message(client._channel.recv())
        assert rtype == proto.T_SUBMIT_OK
        client._channel.send(proto.encode_message(proto.T_SUBMIT_CHUNK, raw))
        _expect_channel_error(client._channel, "digest mismatch")
        client._abandon()
        _await_cleanup(daemon)

    def test_overrun_fails_closed(self, daemon, all_policies):
        import hashlib

        client = daemon_client(daemon, all_policies)
        client.open()
        client._channel.send(proto.encode_message(
            proto.T_SUBMIT_BEGIN,
            proto.encode_submit_begin(
                "app", 4, 2, hashlib.sha256(b"\x00" * 4).digest()
            ),
        ))
        proto.decode_message(client._channel.recv())
        client._channel.send(proto.encode_message(
            proto.T_SUBMIT_CHUNK, b"\x00" * 8
        ))
        _expect_channel_error(client._channel, "overrun")
        client._abandon()
        _await_cleanup(daemon)

    def test_truncation_fails_closed(self, daemon, all_policies):
        import hashlib

        client = daemon_client(daemon, all_policies)
        client.open()
        client._channel.send(proto.encode_message(
            proto.T_SUBMIT_BEGIN,
            proto.encode_submit_begin(
                "app", 100, 1, hashlib.sha256(b"\x00" * 100).digest()
            ),
        ))
        proto.decode_message(client._channel.recv())
        client._channel.send(proto.encode_message(
            proto.T_SUBMIT_CHUNK, b"\x00" * 10
        ))
        _expect_channel_error(client._channel, "truncated")
        client._abandon()
        _await_cleanup(daemon)


class TestFleetSchemaPins:
    """A fleetless daemon must still carry the fleet schema, zeroed.

    The ``ZERO_RESILIENCE`` pattern: STATUS/METRICS consumers never
    branch on key presence — a daemon outside any fleet reports exactly
    ``ZERO_SHARD`` / ``ZERO_STORE``, and a fleeted daemon reports the
    same key sets with live values.
    """

    def test_fleetless_status_carries_zeroed_fleet_schema(self, daemon):
        from repro.service.daemon import ZERO_SHARD
        from repro.service.store import ZERO_STORE

        doc = daemon.status()
        assert doc["shard"] == ZERO_SHARD
        assert doc["store"] == ZERO_STORE
        metrics = daemon.metrics_snapshot()
        assert metrics["shard"] == ZERO_SHARD
        assert metrics["store"] == ZERO_STORE

    def test_zero_shard_schema_is_pinned(self):
        from repro.service.daemon import ZERO_SHARD
        from repro.service.store import ZERO_STORE

        assert ZERO_SHARD == {
            "fleeted": False, "shard_id": "", "shard_index": 0,
            "fleet_size": 0,
        }
        assert set(ZERO_STORE) == {
            "attached", "path", "blobs", "hits", "misses", "puts",
            "corrupt_discarded", "recovered", "recovery_discarded",
            "compacted",
        }
        assert ZERO_STORE["attached"] is False

    def test_fleeted_daemon_keeps_the_same_key_sets(
        self, all_policies, tmp_path
    ):
        from repro.service import FleetCoordinator, VerdictStore
        from repro.service.daemon import ZERO_SHARD
        from repro.service.store import ZERO_STORE

        fleet = FleetCoordinator(
            all_policies, shards=2,
            store=VerdictStore(tmp_path / "store", fsync=False),
            pool_size=1, rsa_bits=768, heap_pages=64, client_pages=64,
            enclave_pages=0x2000,
        )
        try:
            doc = fleet.shards["shard-0"].daemon.status()
            assert set(doc["shard"]) == set(ZERO_SHARD)
            assert set(doc["store"]) == set(ZERO_STORE)
            assert doc["shard"]["fleeted"] is True
            assert doc["store"]["attached"] is True
        finally:
            fleet.stop()
