"""Property tests for the content-addressed verdict cache.

Covers the three properties the ISSUE demands — LRU eviction order, no
cross-policy-digest hits, and thread-safety under concurrent get/put —
plus key semantics (content *and* policy configuration are both part of
the identity) and label re-stamping.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import (
    ComplianceReport,
    IfccPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)
from repro.service import InspectionCache, cache_key


def _report(tag: str, *, compliant: bool = True) -> ComplianceReport:
    if compliant:
        return ComplianceReport.accepted("", [tag], [0x1000])
    return ComplianceReport.rejected("", [tag], failed=[tag])


def _key(content: bytes, policy: bytes = b"policy-A") -> tuple[str, str]:
    import hashlib

    return (
        hashlib.sha256(content).hexdigest(),
        hashlib.sha256(policy).hexdigest(),
    )


class TestKeySemantics:
    def test_key_covers_content(self):
        policies = PolicyRegistry([IfccPolicy()])
        assert cache_key(b"elf-a", policies) != cache_key(b"elf-b", policies)
        assert cache_key(b"elf-a", policies) == cache_key(b"elf-a", policies)

    def test_key_covers_policy_configuration(self):
        """Same module, different parameters => different cache identity."""
        lenient = PolicyRegistry([
            StackProtectionPolicy(exempt_functions={"memcpy"})
        ])
        strict = PolicyRegistry([StackProtectionPolicy()])
        assert cache_key(b"same-elf", lenient) != cache_key(b"same-elf", strict)

    def test_key_covers_module_set(self):
        one = PolicyRegistry([IfccPolicy()])
        two = PolicyRegistry([IfccPolicy(), StackProtectionPolicy()])
        assert cache_key(b"same-elf", one) != cache_key(b"same-elf", two)


class TestLruEviction:
    def test_evicts_least_recently_used_first(self):
        cache = InspectionCache(capacity=3)
        keys = [_key(f"elf-{i}".encode()) for i in range(4)]
        for i in range(3):
            cache.put(keys[i], _report(f"p{i}"))
        cache.put(keys[3], _report("p3"))
        assert keys[0] not in cache
        assert all(k in cache for k in keys[1:])
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = InspectionCache(capacity=3)
        keys = [_key(f"elf-{i}".encode()) for i in range(4)]
        for i in range(3):
            cache.put(keys[i], _report(f"p{i}"))
        cache.get(keys[0])                  # 0 becomes most-recent
        cache.put(keys[3], _report("p3"))   # so 1 is the LRU victim
        assert keys[1] not in cache
        assert keys[0] in cache

    def test_put_refreshes_recency(self):
        cache = InspectionCache(capacity=2)
        a, b, c = (_key(x) for x in (b"a", b"b", b"c"))
        cache.put(a, _report("a"))
        cache.put(b, _report("b"))
        cache.put(a, _report("a2"))         # overwrite refreshes a
        cache.put(c, _report("c"))
        assert b not in cache
        assert cache.get(a).policies_checked == ("a2",)

    def test_capacity_one_and_invalid(self):
        cache = InspectionCache(capacity=1)
        cache.put(_key(b"x"), _report("x"))
        cache.put(_key(b"y"), _report("y"))
        assert len(cache) == 1
        with pytest.raises(ValueError):
            InspectionCache(capacity=0)


class TestVerdictIsolation:
    def test_no_cross_policy_digest_hits(self):
        """A verdict cached under one policy digest must be invisible
        under any other digest, for the same binary bytes."""
        cache = InspectionCache()
        content = b"the-same-binary"
        cache.put(_key(content, b"policy-A"), _report("verdict-A"))
        assert cache.get(_key(content, b"policy-B")) is None
        hit = cache.get(_key(content, b"policy-A"))
        assert hit is not None and hit.policies_checked == ("verdict-A",)

    def test_seeded_random_pairs_never_leak(self):
        rng = random.Random(0xE27A5DE)
        cache = InspectionCache(capacity=64)
        stored: dict[tuple[str, str], str] = {}
        for step in range(2000):
            content = bytes([rng.randrange(16)])
            policy = b"policy-%d" % rng.randrange(8)
            key = _key(content, policy)
            if rng.random() < 0.5:
                tag = f"{content.hex()}/{policy.decode()}"
                cache.put(key, _report(tag))
                stored[key] = tag
            else:
                hit = cache.get(key)
                if hit is not None:
                    # a hit must carry exactly the verdict stored under
                    # this (content, policy) pair — never a neighbour's
                    assert hit.policies_checked == (stored[key],)

    def test_relabels_without_mutating_verdict(self):
        cache = InspectionCache()
        key = _key(b"elf")
        cache.put(key, ComplianceReport.accepted("client-1", ["p"], [0x2000]))
        hit = cache.get(key, benchmark="client-2")
        assert hit.benchmark == "client-2"
        assert hit.compliant and hit.executable_pages == (0x2000,)
        # stored entry stays label-stripped
        assert cache.get(key).benchmark == ""


class TestThreadSafety:
    def test_concurrent_get_put_holds_invariants(self):
        cache = InspectionCache(capacity=32)
        errors: list[Exception] = []
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                barrier.wait()
                for _ in range(1500):
                    content = bytes([rng.randrange(48)])
                    key = _key(content)
                    if rng.random() < 0.5:
                        cache.put(key, _report(content.hex()))
                    else:
                        hit = cache.get(key)
                        if hit is not None:
                            # value integrity: a hit is always the verdict
                            # stored under this content, regardless of
                            # interleaving
                            assert hit.policies_checked == (content.hex(),)
                    assert len(cache) <= 32
            except Exception as exc:  # noqa: BLE001 — collected for the test
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        stats = cache.stats()
        assert stats.hits + stats.misses + stats.puts == 8 * 1500
        assert len(cache) <= 32
