"""Hook-point x fault-kind matrix: every injected failure fails *closed*.

The contract under test (see docs/RESILIENCE.md): whatever fault fires at
whatever hook point, the observable outcome is a REJECT verdict or a
typed error that names its originating stage — never an ACCEPT of a
binary the clean pipeline rejects, and never a raw uncaught exception.
"""

from __future__ import annotations

import re

import pytest

from repro.core import EnclaveClient, provision
from repro.core.provisioning import ResilienceConfig
from repro.crypto import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import EpcExhaustedError, InjectedFault, SgxError
from repro.faults import FAULT_KINDS, FakeClock, FaultPlan, FaultSpec, injected
from repro.service import BatchInspector
from repro.sgx.epc import Epc
from repro.sgx.paging import seal_page, unseal_page

from tests.conftest import compile_demo, small_provider

#: typed ``ExcName: ...`` error text, as the service layer emits it
TYPED = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(Error|Exception|Fault)\b")

#: hook points a serial batch inspection flows through
PIPELINE_HOOKS = (
    "elf.reader", "x86.decoder", "service.batch.worker",
    "service.batch.verdict",
)

#: hook points the provisioning protocol flows through
PROTOCOL_HOOKS = (
    "crypto.channel.send", "crypto.channel.recv",
    "net.sock.send", "net.sock.recv",
    "core.provisioning.handshake", "core.provisioning.record",
)


@pytest.fixture(scope="module")
def good_elf(libc):
    return compile_demo(libc, stack_protector=True, ifcc=True, name="fcgood").elf


@pytest.fixture(scope="module")
def bad_elf(libc):
    return compile_demo(libc, name="fcbad").elf  # fails SP and IFCC policies


@pytest.fixture(scope="module")
def channel_keypair():
    """Pre-generated channel key so each provisioning run skips keygen."""
    return generate_keypair(768, HmacDrbg(b"failclosed-keypair"))


def _assert_fail_closed(result, *, clean_accepts: bool) -> None:
    if result.error is not None:
        assert TYPED.match(result.error), result.error
        assert (
            "[fault:" in result.error
            or "stage=" in result.error
            or "deadline" in result.error.lower()
        ), f"error does not name its origin: {result.error}"
        return
    assert result.report is not None
    if result.accepted:
        # accepting under a fault is only legal when the clean pipeline
        # accepts these bytes (e.g. a delay fault, or a benign bitflip)
        assert clean_accepts, "fault turned a rejected binary into an ACCEPT"
    else:
        # a rejection must say why: failed policies or a structural stage
        assert result.report.policies_failed or result.report.rejected_stage


@pytest.mark.parametrize("hook", PIPELINE_HOOKS)
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_pipeline_matrix_fails_closed(all_policies, good_elf, bad_elf, hook, kind):
    clock = FakeClock()
    plan = FaultPlan(
        [FaultSpec(hook=hook, kind=kind, max_triggers=None)],
        clock=clock, hang_seconds=10.0,
    )
    inspector = BatchInspector(
        all_policies, mode="serial", cache=False,
        deadline=5.0, clock=clock,
    )
    with injected(plan):
        report = inspector.inspect_batch([("good", good_elf), ("bad", bad_elf)])

    assert plan.events, f"{hook}/{kind} never fired"
    assert len(report.results) == 2
    _assert_fail_closed(report.results[0], clean_accepts=True)
    _assert_fail_closed(report.results[1], clean_accepts=False)
    # the fail-closed cardinal rule, stated directly:
    assert not report.results[1].accepted


@pytest.mark.parametrize("hook", PROTOCOL_HOOKS)
@pytest.mark.parametrize("kind", ("raise", "drop", "bitflip"))
def test_protocol_matrix_fails_closed(
    all_policies, good_elf, channel_keypair, hook, kind
):
    """A persistent transport/protocol fault ends in a typed REJECT."""
    clock = FakeClock()
    plan = FaultPlan(
        [FaultSpec(hook=hook, kind=kind, max_triggers=None)],
        clock=clock, hang_seconds=10.0,
    )
    provider = small_provider(all_policies, channel_keypair=channel_keypair)
    client = EnclaveClient(good_elf, policies=all_policies, benchmark="fc")
    with injected(plan):
        result = provision(
            provider, client,
            resilience=ResilienceConfig(max_retransmits=2, clock=clock),
        )

    assert plan.events, f"{hook}/{kind} never fired"
    assert not result.accepted
    assert result.error is not None and TYPED.match(result.error)
    assert result.report.rejected_stage in (
        "channel", "protocol", "attestation", "machinery"
    )


def test_transient_record_drop_is_retransmitted(
    all_policies, good_elf, channel_keypair
):
    """One dropped content record is recovered by the channel ARQ: the
    run still ends in a clean ACCEPT, after a backoff on the shared clock."""
    clock = FakeClock()
    plan = FaultPlan(
        [FaultSpec(hook="crypto.channel.send", kind="drop",
                   after=3, max_triggers=1)],
        clock=clock,
    )
    provider = small_provider(all_policies, channel_keypair=channel_keypair)
    client = EnclaveClient(good_elf, policies=all_policies, benchmark="fc")
    with injected(plan):
        result = provision(
            provider, client,
            resilience=ResilienceConfig(max_retransmits=3, clock=clock),
        )
    assert plan.events and plan.events[0].kind == "drop"
    assert result.error is None
    assert result.accepted
    assert result.client_verdict is not None
    assert result.client_verdict.compliant
    assert clock.sleeps, "recovery must have gone through the ARQ backoff"


def test_without_resilience_faults_still_raise_typed_errors(
    all_policies, good_elf, channel_keypair
):
    """No ResilienceConfig: the legacy contract — a typed raise, no wrap."""
    plan = FaultPlan(
        [FaultSpec(hook="crypto.channel.recv", kind="raise")],
    )
    provider = small_provider(all_policies, channel_keypair=channel_keypair)
    client = EnclaveClient(good_elf, policies=all_policies, benchmark="fc")
    from repro.errors import CryptoError

    with injected(plan):
        with pytest.raises(CryptoError, match=r"\[fault:crypto\.channel\.recv"):
            provision(provider, client)


def test_epc_alloc_fault_is_typed_eviction_pressure():
    epc = Epc(8, b"k" * 16)
    plan = FaultPlan([FaultSpec(hook="sgx.epc.alloc", kind="raise")])
    with injected(plan):
        with pytest.raises(EpcExhaustedError, match=r"\[fault:sgx\.epc\.alloc"):
            epc.allocate(1, 0x10000)
    # after the single-shot fault, allocation works again
    with injected(plan):
        page = epc.allocate(1, 0x10000)
    assert page.owner_eid == 1


@pytest.mark.parametrize("kind", ("bitflip", "truncate", "drop", "raise"))
def test_paging_unseal_faults_never_yield_plaintext(kind):
    key = b"p" * 32
    blob = seal_page(key, 1, 0x10000, 7, "rw-", b"\xab" * 4096)
    plan = FaultPlan([FaultSpec(hook="sgx.paging.unseal", kind=kind)])
    with injected(plan):
        with pytest.raises(SgxError):
            unseal_page(key, blob)
    # the blob itself is untouched: a clean reload still round-trips
    assert unseal_page(key, blob) == b"\xab" * 4096


def test_injected_fault_carries_hook_and_kind():
    plan = FaultPlan([FaultSpec(hook="service.batch.worker", kind="raise")])
    with injected(plan):
        from repro.faults import fault_hook

        with pytest.raises(InjectedFault) as exc_info:
            fault_hook("service.batch.worker")
    assert exc_info.value.hook == "service.batch.worker"
    assert exc_info.value.kind == "raise"
    assert "[fault:service.batch.worker:raise]" in str(exc_info.value)
