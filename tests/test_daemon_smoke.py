"""End-to-end smoke: ``repro serve`` in a real subprocess over real TCP.

The one test here is what the CI daemon-smoke job runs: start the CLI
daemon on loopback, do a full SDK round-trip (attest → submit →
verdict), probe STATUS and METRICS, then SIGTERM and require a clean
exit — all under a hard wall-clock budget so a wedged daemon fails
instead of hanging the suite.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.net import connect_tcp
from repro.service import InspectionClient, device_key_from_announce

#: the whole smoke (libc build + daemon warm-up + round trip) must fit here
HARD_TIMEOUT = 180.0


@pytest.fixture()
def serve_proc():
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--max-uptime", str(HARD_TIMEOUT)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, cwd=root, text=True,
    )
    try:
        yield proc
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.communicate(timeout=30)


def test_serve_roundtrip_status_metrics_shutdown(
    serve_proc, libc, all_policies
):
    t0 = time.monotonic()
    # the announce line is the daemon's out-of-band bootstrap record
    line = serve_proc.stdout.readline()
    assert line, serve_proc.stderr.read()
    announce = json.loads(line)
    assert announce["host"] == "127.0.0.1"
    assert announce["protocol_version"] == 1

    # the CLI serves the stack-protection registry by default
    from repro.core import PolicyRegistry
    from repro.harness.runner import make_policy
    from repro.service.corpus import generate_variant_corpus

    policies = PolicyRegistry([make_policy("stack-protection", libc)])
    corpus = generate_variant_corpus(2, libc=libc)

    client = InspectionClient(
        policies,
        device_key_from_announce(announce),
        lambda: connect_tcp(announce["host"], announce["port"]),
        timeout=30.0,
    )
    label, raw = corpus[0]
    verdict = client.inspect(raw, label)
    assert verdict.report is not None, verdict.error
    # same binary again: the daemon's verdict cache answers, byte-identical
    again = client.inspect(raw, label)
    assert again.source == "cache"
    assert again.wire == verdict.wire

    status = client.status()
    assert status["status"] == "ok"
    assert status["connections_active"] >= 1
    metrics = client.metrics()
    assert metrics["counters"]["requests.SUBMIT"] == 2
    assert metrics["cache"]["hits"] >= 1
    assert metrics["latency"]["inspect"]["count"] >= 1
    assert metrics["resilience"]["retries"] == 1  # CLI default
    client.close()

    serve_proc.send_signal(signal.SIGTERM)
    out, err = serve_proc.communicate(timeout=60)
    assert serve_proc.returncode == 0, err
    assert "daemon stopped" in err
    assert time.monotonic() - t0 < HARD_TIMEOUT
