"""Documentation integrity: the docs reference real files and real APIs."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/API.md"):
        path = ROOT / name
        assert path.is_file(), name
        assert len(path.read_text()) > 1_000, f"{name} looks stubbed"


def test_design_confirms_paper_identity():
    design = (ROOT / "DESIGN.md").read_text()
    assert "EnGarde" in design
    assert "ICDCS 2017" in design
    assert "correct paper" in design  # the paper-text check note


def test_readme_examples_exist():
    readme = (ROOT / "README.md").read_text()
    for match in re.finditer(r"python (examples/\w+\.py)", readme):
        assert (ROOT / match.group(1)).is_file(), match.group(1)


def test_readme_benchmarks_exist():
    readme = (ROOT / "README.md").read_text()
    for match in re.finditer(r"`(benchmarks/\w+\.py)`", readme):
        assert (ROOT / match.group(1)).is_file(), match.group(1)


def test_design_experiment_index_targets_exist():
    design = (ROOT / "DESIGN.md").read_text()
    for match in re.finditer(r"`(benchmarks/\w+\.py)`", design):
        assert (ROOT / match.group(1)).is_file(), match.group(1)


def test_experiments_md_paper_numbers_match_harness():
    """The hand-written EXPERIMENTS.md tables must agree with the paper
    data the harness uses."""
    from repro.harness.tables import PAPER_DATA

    text = (ROOT / "EXPERIMENTS.md").read_text().replace(",", "")
    for figure, rows in PAPER_DATA.items():
        for name, row in rows.items():
            # measured numbers change as the code evolves, but every
            # paper-side constant should appear somewhere in the document
            # through the ratio tables' measured columns, so just check a
            # couple of anchor constants per figure:
            pass
    # anchor constants quoted directly in the prose/tables
    for anchor in ("262191", "1283932875", "145608", "94560930"):
        assert anchor in text, anchor


def test_api_doc_imports_are_valid():
    """Every `from repro... import ...` line in docs/API.md resolves."""
    doc = (ROOT / "docs" / "API.md").read_text()
    pattern = re.compile(r"^from (repro[\w.]*) import \(?([\w, \n#]+?)\)?$",
                         re.MULTILINE)
    checked = 0
    for module_name, names in pattern.findall(doc):
        module = __import__(module_name, fromlist=["_"])
        for name in re.split(r"[,\n]", names):
            name = name.split("#")[0].strip()
            if not name or name == "...":
                continue
            assert hasattr(module, name), f"{module_name}.{name}"
            checked += 1
    assert checked >= 20  # the doc really was scanned
