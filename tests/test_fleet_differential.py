"""Differential oracle for the sharded fleet: byte-identical or bust.

The fleet adds consistent hashing, shard fail-over, and a durable
store under the daemon path — none of which may change a single verdict
byte.  This battery routes the 52-variant corpus (compliant, policy-
rejected, structurally-rejected, duplicates) through a 1-shard and a
4-shard fleet and pins every delivered verdict wire byte-identical to
the serial :class:`~repro.core.EnGarde` oracle:

* cold — fresh fleet, fresh store directory: every unique binary pays
  real inspection on the shard that owns its digest,
* store-warm restart — the fleet is torn down and rebuilt over the same
  directory: every verdict must come back from the tiered cache (zero
  inspections) and still match the oracle byte-for-byte,
* a light concurrent storm cross-checks that client parallelism does
  not perturb the wire either.
"""

from __future__ import annotations

import pytest

from repro.core import EnGarde
from repro.service import (
    FleetCoordinator,
    VerdictStore,
    generate_variant_corpus,
    run_fleet_storm,
)

CORPUS_SIZE = 52


@pytest.fixture(scope="module")
def corpus(libc):
    return generate_variant_corpus(CORPUS_SIZE, libc=libc)


@pytest.fixture(scope="module")
def oracle(corpus, all_policies):
    """Serial single-EnGarde verdict wires: the ground truth."""
    engarde = EnGarde(all_policies)
    return {
        label: engarde.inspect(raw, benchmark=label).report.serialize()
        for label, raw in corpus
    }


def make_fleet(policies, shards: int, store_dir) -> FleetCoordinator:
    fleet = FleetCoordinator(
        policies,
        shards=shards,
        store=VerdictStore(store_dir, fsync=False),
        pool_size=1,
        rsa_bits=768,
        heap_pages=64,
        client_pages=64,
        enclave_pages=0x2000,
        read_timeout=30.0,
        client_timeout=30.0,
        max_connections=32,
    )
    fleet.start()
    return fleet


def run_corpus(fleet, corpus) -> list[tuple[str, object]]:
    return [(label, fleet.submit(raw, label)) for label, raw in corpus]


def assert_byte_identical(results, oracle) -> dict:
    sources: dict[str, int] = {}
    for label, verdict in results:
        assert verdict.report is not None, (label, verdict.error)
        assert verdict.wire == oracle[label], (
            f"{label}: fleet wire diverged from the serial oracle"
        )
        sources[verdict.source] = sources.get(verdict.source, 0) + 1
    return sources


@pytest.mark.parametrize("shards", [1, 4])
class TestFleetDifferential:
    def test_cold_then_store_warm_restart(
        self, tmp_path, all_policies, corpus, oracle, shards
    ):
        store_dir = tmp_path / f"store-{shards}"

        fleet = make_fleet(all_policies, shards, store_dir)
        try:
            cold_sources = assert_byte_identical(
                run_corpus(fleet, corpus), oracle
            )
            status = fleet.status()
            assert len(status["live_shards"]) == shards
            store_blobs = status["store"]["blobs"]
        finally:
            fleet.stop()
        assert cold_sources.get("inspected", 0) > 0, (
            "a cold fleet must actually inspect"
        )
        assert store_blobs > 0, "cold verdicts must be published durably"

        # the restart: new daemons, new pools, empty memory tiers — the
        # only carried state is the store directory
        fleet = make_fleet(all_policies, shards, store_dir)
        try:
            warm_sources = assert_byte_identical(
                run_corpus(fleet, corpus), oracle
            )
            recovered = fleet.status()["store"]["recovered"]
        finally:
            fleet.stop()
        assert recovered == store_blobs, (
            "restart recovery must re-validate every published blob"
        )
        assert warm_sources == {"cache": len(corpus)}, (
            f"store-warm restart must serve everything from the tiered "
            f"cache, got {warm_sources}"
        )

    def test_concurrent_storm_matches_oracle(
        self, tmp_path, all_policies, corpus, oracle, shards
    ):
        fleet = make_fleet(
            all_policies, shards, tmp_path / f"storm-{shards}"
        )
        try:
            result = run_fleet_storm(
                fleet, corpus, clients=8, per_client=10, oracle=oracle,
            )
        finally:
            fleet.stop()
        assert result["divergences"] == 0, result["failures"]
        assert result["typed_failures"] == 0, result["failures"]
        assert result["hung_clients"] == []
        assert result["worker_errors"] == []


def test_one_and_four_shard_fleets_agree(
    tmp_path, all_policies, corpus, oracle
):
    """Topology must be invisible in the wire: the same corpus through
    1 shard and through 4 shards produces identical bytes per label."""
    wires: dict[int, dict[str, bytes]] = {}
    for shards in (1, 4):
        fleet = make_fleet(all_policies, shards, tmp_path / f"agree-{shards}")
        try:
            wires[shards] = {
                label: verdict.wire
                for label, verdict in run_corpus(fleet, corpus)
            }
        finally:
            fleet.stop()
    assert wires[1] == wires[4]
    assert wires[1] == oracle


def test_four_shard_placement_actually_spreads(
    tmp_path, all_policies, corpus
):
    """Sanity: the 52-variant corpus does not all land on one shard."""
    fleet = make_fleet(all_policies, 4, tmp_path / "spread")
    try:
        owners = {fleet.shard_for(raw) for _, raw in corpus}
    finally:
        fleet.stop()
    assert len(owners) >= 3, f"corpus only reached shards {sorted(owners)}"
