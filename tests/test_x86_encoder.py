"""Encoder byte-exactness, including every sequence quoted in the paper."""

from __future__ import annotations

import pytest

from repro.errors import EncodeError
from repro.x86 import (
    EAX, ECX, R8, R9, R12, R13, RAX, RBP, RCX, RDI, RSP,
    Enc, Mem, Reg, reg_by_name,
)


class TestPaperSequences:
    """The exact byte sequences from the paper's listings."""

    def test_canary_load(self):
        # 19311: mov %fs:0x28,%rax
        assert Enc.mov_load(Mem(seg="fs", disp=0x28), RAX) == bytes.fromhex(
            "64488b042528000000"
        )

    def test_canary_store(self):
        # 1931a: mov %rax,(%rsp)
        assert Enc.mov_store(RAX, Mem(base=RSP)) == bytes.fromhex("48890424")

    def test_canary_compare(self):
        # 19407: cmp (%rsp),%rax
        assert Enc.alu_load("cmp", Mem(base=RSP), RAX) == bytes.fromhex("483b0424")

    def test_ifcc_sub(self):
        # 1b460: sub %eax,%ecx  (AT&T: src %eax in ModRM.reg, dst %ecx in rm)
        assert Enc.alu_rr("sub", EAX, ECX) == bytes.fromhex("29c1")

    def test_ifcc_mask(self):
        # 1b462: and $0x1ff8,%rcx
        assert Enc.alu_imm("and", 0x1FF8, RCX) == bytes.fromhex("4881e1f81f0000")

    def test_ifcc_add(self):
        # 1b469: add %rax,%rcx
        assert Enc.alu_rr("add", RAX, RCX) == bytes.fromhex("4801c1")

    def test_ifcc_indirect_call(self):
        # 1b475: callq *%rcx
        assert Enc.call_rm(RCX) == bytes.fromhex("ffd1")

    def test_ifcc_lea(self):
        # 1b459: lea 0x85c70(%rip),%rax
        assert Enc.lea(Mem(rip_relative=True, disp=0x85C70), RAX) == bytes.fromhex(
            "488d05705c0800"
        )

    def test_jump_table_nopl(self):
        # a19d5: nopl (%rax)
        assert Enc.nop(3) == bytes.fromhex("0f1f00")


class TestMoves:
    def test_mov_rr(self):
        assert Enc.mov_rr(RAX, RCX) == bytes.fromhex("4889c1")
        assert Enc.mov_rr(EAX, ECX) == bytes.fromhex("89c1")

    def test_mov_rr_extended_regs(self):
        assert Enc.mov_rr(R8, R9) == bytes.fromhex("4d89c1")

    def test_mov_width_mismatch(self):
        with pytest.raises(EncodeError):
            Enc.mov_rr(RAX, ECX)

    def test_mov_imm_small(self):
        # fits in 32 bits -> C7 /0 sign-extended
        assert Enc.mov_imm(42, RAX) == bytes.fromhex("48c7c02a000000")

    def test_mov_imm_large(self):
        # needs movabs (B8+r imm64)
        encoded = Enc.mov_imm(0x1122334455667788, RAX)
        assert encoded == bytes.fromhex("48b88877665544332211")

    def test_mov_imm_32bit(self):
        assert Enc.mov_imm(7, EAX) == bytes.fromhex("b807000000")

    def test_mov_imm_negative(self):
        assert Enc.mov_imm(-1, RAX) == bytes.fromhex("48c7c0ffffffff")

    def test_mov_store_disp8(self):
        assert Enc.mov_store(RAX, Mem(base=RSP, disp=8)) == bytes.fromhex("4889442408")

    def test_mov_load_rbp(self):
        # RBP base with zero disp still needs mod=01 disp8=0
        assert Enc.mov_load(Mem(base=RBP), RAX) == bytes.fromhex("488b4500")

    def test_r12_r13_special_cases(self):
        # R12 needs SIB like RSP; R13 needs disp8 like RBP
        assert Enc.mov_load(Mem(base=R12), RAX) == bytes.fromhex("498b0424")
        assert Enc.mov_load(Mem(base=R13), RAX) == bytes.fromhex("498b4500")

    def test_sib_scaled_index(self):
        encoded = Enc.mov_load(Mem(base=RAX, index=RCX, scale=8), RDI)
        assert encoded == bytes.fromhex("488b3cc8")

    def test_rsp_cannot_be_index(self):
        with pytest.raises(EncodeError):
            Enc.mov_load(Mem(base=RAX, index=RSP), RDI)

    def test_lea_rejects_segment(self):
        with pytest.raises(EncodeError):
            Enc.lea(Mem(seg="fs", disp=0x28), RAX)


class TestAluAndMisc:
    def test_alu_imm8_form(self):
        # small immediates use the 0x83 sign-extended form
        assert Enc.alu_imm("sub", 8, RSP) == bytes.fromhex("4883ec08")
        assert Enc.alu_imm("add", 8, RSP) == bytes.fromhex("4883c408")

    def test_alu_imm32_form(self):
        assert Enc.alu_imm("cmp", 0x1000, RAX) == bytes.fromhex("483d00100000") or \
            Enc.alu_imm("cmp", 0x1000, RAX) == bytes.fromhex("4881f800100000")

    def test_unknown_alu(self):
        with pytest.raises(EncodeError):
            Enc.alu_rr("frobnicate", RAX, RCX)

    def test_push_pop(self):
        assert Enc.push(RAX) == b"\x50"
        assert Enc.pop(RCX) == b"\x59"
        assert Enc.push(R8) == bytes.fromhex("4150")
        assert Enc.pop(R13) == bytes.fromhex("415d")

    def test_shifts(self):
        assert Enc.shift_imm("shl", 4, RAX) == bytes.fromhex("48c1e004")
        with pytest.raises(EncodeError):
            Enc.shift_imm("shl", 64, RAX)
        with pytest.raises(EncodeError):
            Enc.shift_imm("rol", 1, RAX)

    def test_control_flow(self):
        assert Enc.call_rel32(0) == bytes.fromhex("e800000000")
        assert Enc.jmp_rel32(-5) == bytes.fromhex("e9fbffffff")
        assert Enc.jmp_rel8(2) == bytes.fromhex("eb02")
        assert Enc.jcc_rel8("jne", 0x12) == bytes.fromhex("7512")
        assert Enc.jcc_rel32("je", 0x100) == bytes.fromhex("0f8400010000")
        assert Enc.ret() == b"\xc3"

    def test_jcc_aliases(self):
        assert Enc.jcc_rel8("jz", 0) == Enc.jcc_rel8("je", 0)
        with pytest.raises(EncodeError):
            Enc.jcc_rel8("jxx", 0)

    def test_nops_are_canonical_lengths(self):
        for n in range(1, 10):
            assert len(Enc.nop(n)) == n
        with pytest.raises(EncodeError):
            Enc.nop(10)

    def test_nop_pad_any_length(self):
        for n in range(1, 60):
            assert len(Enc.nop_pad(n)) == n

    def test_imul(self):
        assert Enc.imul_rr(RCX, RAX) == bytes.fromhex("480fafc1")

    def test_test(self):
        assert Enc.test_rr(RAX, RAX) == bytes.fromhex("4885c0")


def test_reg_by_name():
    assert reg_by_name("rax") == RAX
    assert reg_by_name("%rsp") == RSP
    assert reg_by_name("eax") == EAX
    with pytest.raises(KeyError):
        reg_by_name("xmm0")


def test_reg_properties():
    assert RAX.low3 == 0 and not RAX.needs_rex_bit
    assert R8.low3 == 0 and R8.needs_rex_bit
    assert RAX.as_bits(32) == EAX
    with pytest.raises(ValueError):
        Reg(16, 64)
    with pytest.raises(ValueError):
        Reg(0, 16)
