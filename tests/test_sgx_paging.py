"""EPC paging (EWB/ELDU): seal, reload, tamper and replay attacks."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import EpcExhaustedError, SgxError
from repro.sgx import SgxMachine, SgxParams
from repro.sgx.params import PAGE_SIZE

BASE = 0x10000


@pytest.fixture()
def machine():
    return SgxMachine(SgxParams(epc_pages=16, heap_initial_pages=2))


@pytest.fixture()
def enclave(machine):
    e = machine.ecreate(BASE, 0x40000)
    machine.add_measured_page(e, BASE, b"code")
    machine.eadd(e, BASE + PAGE_SIZE, b"data page content")
    machine.einit(e)
    return e


class TestEvictReload:
    def test_roundtrip_preserves_content(self, machine, enclave):
        vaddr = BASE + PAGE_SIZE
        before = enclave.read(vaddr, 32)
        blob = machine.ewb(enclave, vaddr)
        assert vaddr not in enclave.pages
        machine.eldu(enclave, blob)
        assert enclave.read(vaddr, 32) == before

    def test_eviction_frees_epc(self, machine, enclave):
        free_before = machine.epc.free_pages
        blob = machine.ewb(enclave, BASE + PAGE_SIZE)
        assert machine.epc.free_pages == free_before + 1
        machine.eldu(enclave, blob)
        assert machine.epc.free_pages == free_before

    def test_permissions_preserved(self, machine, enclave):
        from repro.sgx import PagePermissions

        vaddr = BASE + PAGE_SIZE
        machine.emodpr(enclave, vaddr, PagePermissions(True, False, False))
        blob = machine.ewb(enclave, vaddr)
        machine.eldu(enclave, blob)
        assert enclave.pages[vaddr].perms.as_str() == "r--"

    def test_evicted_access_faults(self, machine, enclave):
        machine.ewb(enclave, BASE + PAGE_SIZE)
        with pytest.raises(SgxError, match="no EPC page"):
            enclave.read(BASE + PAGE_SIZE, 4)

    def test_ewb_requires_idle_enclave(self, machine, enclave):
        machine.eenter(enclave)
        with pytest.raises(SgxError, match="running"):
            machine.ewb(enclave, BASE + PAGE_SIZE)

    def test_ewb_unmapped(self, machine, enclave):
        with pytest.raises(SgxError, match="unmapped"):
            machine.ewb(enclave, BASE + 8 * PAGE_SIZE)

    def test_eldu_resident_page_rejected(self, machine, enclave):
        blob = machine.ewb(enclave, BASE + PAGE_SIZE)
        machine.eldu(enclave, blob)
        with pytest.raises(SgxError, match="resident"):
            machine.eldu(enclave, blob)

    def test_eviction_relieves_epc_pressure(self, machine, enclave):
        # fill the EPC, then eviction makes room for another enclave
        while machine.epc.free_pages:
            machine.eaug(enclave, BASE + (2 + machine.epc.used_pages) * PAGE_SIZE)
        with pytest.raises(EpcExhaustedError):
            machine.ecreate(0x200000, PAGE_SIZE) and machine.eadd(
                machine.enclaves[max(machine.enclaves)], 0x200000
            )
        machine.ewb(enclave, BASE + PAGE_SIZE)
        assert machine.epc.free_pages == 1


class TestPagingAttacks:
    def test_tampered_blob_rejected(self, machine, enclave):
        blob = machine.ewb(enclave, BASE + PAGE_SIZE)
        flipped = bytearray(blob.ciphertext)
        flipped[100] ^= 0x01
        forged = dataclasses.replace(blob, ciphertext=bytes(flipped))
        with pytest.raises(SgxError, match="MAC"):
            machine.eldu(enclave, forged)

    def test_replay_of_stale_version_rejected(self, machine, enclave):
        """The classic paging replay: evict v1, reload, modify in-enclave
        state, evict again (v2), then try to feed back the stale v1."""
        vaddr = BASE + PAGE_SIZE
        stale = machine.ewb(enclave, vaddr)
        machine.eldu(enclave, stale)
        enclave.write(vaddr, b"updated state")
        fresh = machine.ewb(enclave, vaddr)
        with pytest.raises(SgxError, match="stale"):
            machine.eldu(enclave, stale)
        # and the legitimate copy still loads
        machine.eldu(enclave, fresh)
        assert enclave.read(vaddr, 13) == b"updated state"

    def test_cross_enclave_blob_rejected(self, machine, enclave):
        other = machine.ecreate(0x200000, 0x10000)
        machine.add_measured_page(other, 0x200000, b"other")
        machine.einit(other)
        blob = machine.ewb(enclave, BASE + PAGE_SIZE)
        with pytest.raises(SgxError, match="different enclave"):
            machine.eldu(other, blob)

    def test_blob_is_ciphertext(self, machine, enclave):
        vaddr = BASE + PAGE_SIZE
        secret = enclave.read(vaddr, 17)
        blob = machine.ewb(enclave, vaddr)
        assert secret not in blob.ciphertext

    def test_version_array_not_host_reachable(self, machine):
        # the version store must not be exposed on any public surface
        public = [n for n in dir(machine) if not n.startswith("_")]
        assert "version_array" not in public


class TestSealedEnclaveInteraction:
    def test_paging_a_sealed_enclaves_code_page_keeps_permissions(
        self, machine, enclave
    ):
        """Even if the OS pages out a sealed enclave's code page, it comes
        back executable-not-writable: paging is not a W^X bypass."""
        from repro.sgx import PagePermissions

        vaddr = BASE  # the code page
        machine.emodpr(enclave, vaddr, PagePermissions(True, False, True))
        enclave.sealed = True
        blob = machine.ewb(enclave, vaddr)
        machine.eldu(enclave, blob)
        page = enclave.pages[vaddr]
        assert page.perms.as_str() == "r-x"
        with pytest.raises(SgxError):
            enclave.write(vaddr, b"sneaky")


class TestHostPaging:
    def test_page_out_in_roundtrip(self, machine):
        from repro.sgx import HostOS

        host = HostOS(machine)
        rt = host.build_enclave(
            base=BASE, size=0x40000,
            bootstrap_pages={BASE: b"boot"}, heap_pages=2, client_pages=1,
        )
        rt.enclave.write(rt.heap_base, b"tenant state")
        host.page_out(rt, rt.heap_base)
        assert not rt.page_table[rt.heap_base].read  # PTE not-present
        host.page_in(rt, rt.heap_base)
        assert rt.enclave.read(rt.heap_base, 12) == b"tenant state"
        assert rt.page_table[rt.heap_base].read

    def test_page_in_without_eviction(self, machine):
        from repro.sgx import HostOS

        host = HostOS(machine)
        rt = host.build_enclave(
            base=BASE, size=0x40000,
            bootstrap_pages={BASE: b"boot"}, heap_pages=1, client_pages=0,
        )
        with pytest.raises(SgxError, match="no evicted"):
            host.page_in(rt, rt.heap_base)

    def test_whole_enclave_swap_frees_epc_for_another_tenant(self):
        from repro.sgx import HostOS, SgxMachine, SgxParams

        machine = SgxMachine(SgxParams(epc_pages=12, heap_initial_pages=1))
        host = HostOS(machine)
        first = host.build_enclave(
            base=BASE, size=0x40000,
            bootstrap_pages={BASE: b"tenant-1"}, heap_pages=6, client_pages=2,
        )
        first.enclave.write(first.heap_base, b"precious")
        # not enough EPC left for a second tenant of the same shape...
        assert machine.epc.free_pages < 9
        count = host.evict_all_idle(first)
        assert count == 9
        second = host.build_enclave(
            base=0x200000, size=0x40000,
            bootstrap_pages={0x200000: b"tenant-2"}, heap_pages=6,
            client_pages=2,
        )
        assert second.enclave.read(0x200000, 8) == b"tenant-2"
        # ...and tenant 1's state survives the round trip
        host.page_in(first, first.heap_base)
        assert first.enclave.read(first.heap_base, 8) == b"precious"
