"""The x86-64 interpreter: semantics, flags, control flow, faults."""

from __future__ import annotations

import pytest

from repro.x86 import Assembler, Enc, Mem, RAX, RBP, RCX, RDX, RSP, EAX, ECX
from repro.x86.interp import (
    ExecutionFault,
    FuelExhausted,
    HaltExecution,
    Interpreter,
)


class FlatMemory:
    """A simple RAM for interpreter unit tests (no permissions)."""

    def __init__(self, size=0x10000):
        self.ram = bytearray(size)

    def read(self, addr, size):
        if addr + size > len(self.ram):
            raise ExecutionFault(f"oob read at {addr:#x}")
        return bytes(self.ram[addr:addr + size])

    def write(self, addr, data):
        if addr + len(data) > len(self.ram):
            raise ExecutionFault(f"oob write at {addr:#x}")
        self.ram[addr:addr + len(data)] = data

    def fetch(self, addr, size):
        return self.read(addr, min(size, len(self.ram) - addr))


CODE_BASE = 0x1000
STACK_TOP = 0x8000


def run_asm(build, fuel=10_000, hooks=None):
    """Assemble `build(asm)` at CODE_BASE, run to completion, return CPU."""
    asm = Assembler(bundle=False)
    build(asm)
    code = asm.finish()
    mem = FlatMemory()
    mem.write(CODE_BASE, code)
    interp = Interpreter(mem, fuel=fuel, hooks=hooks or {},
                         fs_base_read=lambda off, n: b"\xaa" * n)
    state = interp.run(CODE_BASE, STACK_TOP)
    return state, interp, mem


class TestDataFlow:
    def test_mov_imm_and_ret(self):
        state, _, _ = run_asm(lambda a: (a.mov_imm(42, RAX), a.ret()))
        assert state.regs[0] == 42

    def test_mov_large_imm(self):
        state, _, _ = run_asm(
            lambda a: (a.mov_imm(0x1122334455667788, RCX), a.ret())
        )
        assert state.regs[1] == 0x1122334455667788

    def test_store_load_roundtrip(self):
        def build(a):
            a.mov_imm(0xDEAD, RAX)
            a.mov_store(RAX, Mem(base=RSP, disp=-16))
            a.mov_load(Mem(base=RSP, disp=-16), RCX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[1] == 0xDEAD

    def test_32bit_write_zero_extends(self):
        def build(a):
            a.mov_imm(-1, RAX)          # all ones
            a.alu_rr("xor", ECX, ECX)   # clears rcx entirely
            a.mov_rr(EAX, ECX)          # 32-bit move
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[1] == 0xFFFFFFFF  # upper half zeroed

    def test_lea_computes_address(self):
        def build(a):
            a.mov_imm(0x100, RAX)
            a.mov_imm(0x10, RCX)
            a.lea(Mem(base=RAX, index=RCX, scale=4, disp=8), RDX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[2] == 0x100 + 0x40 + 8

    def test_fs_canary_read(self):
        def build(a):
            a.mov_load(Mem(seg="fs", disp=0x28), RAX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == int.from_bytes(b"\xaa" * 8, "little")


class TestArithmetic:
    def test_add_sub(self):
        def build(a):
            a.mov_imm(10, RAX)
            a.alu_imm("add", 5, RAX)
            a.alu_imm("sub", 3, RAX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 12

    def test_wraparound(self):
        def build(a):
            a.mov_imm(-1, RAX)
            a.alu_imm("add", 1, RAX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 0
        assert state.zf and state.cf

    def test_imul(self):
        def build(a):
            a.mov_imm(7, RAX)
            a.mov_imm(-3, RCX)
            a.imul_rr(RCX, RAX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == (-21) & ((1 << 64) - 1)

    def test_shifts(self):
        def build(a):
            a.mov_imm(0b1011, RAX)
            a.shift_imm("shl", 4, RAX)
            a.mov_imm(-8, RCX)
            a.shift_imm("sar", 1, RCX)
            a.mov_imm(0x80, RDX)
            a.shift_imm("shr", 3, RDX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 0b10110000
        assert state.regs[1] == (-4) & ((1 << 64) - 1)
        assert state.regs[2] == 0x10

    def test_inc_dec_preserve_cf(self):
        def build(a):
            a.mov_imm(0, RAX)
            a.alu_imm("sub", 1, RAX)     # sets CF (borrow)
            a.unary_holder = None
            a.raw(Enc.incdec("inc", RCX), 1)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.cf  # inc must not clear the borrow flag


class TestControlFlow:
    def test_conditional_branch_taken(self):
        def build(a):
            done = a.label("done")
            a.mov_imm(5, RAX)
            a.alu_imm("cmp", 5, RAX)
            a.jcc_label("je", done)
            a.mov_imm(111, RCX)  # skipped
            a.bind(done)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[1] == 0

    def test_loop_counts(self):
        def build(a):
            a.mov_imm(0, RAX)
            a.mov_imm(10, RCX)
            loop = a.label("loop")
            a.bind(loop)
            a.alu_imm("add", 3, RAX)
            a.alu_imm("sub", 1, RCX)
            a.alu_imm("cmp", 0, RCX)
            a.jcc_label("jne", loop)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 30

    def test_signed_vs_unsigned_compare(self):
        def build(a):
            less = a.label("less")
            a.mov_imm(-1, RAX)
            a.alu_imm("cmp", 1, RAX)     # -1 < 1 signed, > 1 unsigned
            a.jcc_label("jl", less)
            a.mov_imm(0, RDX)
            a.ret()
            a.bind(less)
            a.mov_imm(1, RDX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[2] == 1

        def build_unsigned(a):
            above = a.label("above")
            a.mov_imm(-1, RAX)
            a.alu_imm("cmp", 1, RAX)
            a.jcc_label("ja", above)    # unsigned: 0xfff... > 1
            a.mov_imm(0, RDX)
            a.ret()
            a.bind(above)
            a.mov_imm(2, RDX)
            a.ret()

        state, _, _ = run_asm(build_unsigned)
        assert state.regs[2] == 2

    def test_call_and_return(self):
        def build(a):
            fn = a.label("fn")
            a.call_label(fn)
            a.alu_imm("add", 1, RAX)
            a.ret()
            a.bind(fn)
            a.mov_imm(41, RAX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 42

    def test_indirect_call_through_register(self):
        def build(a):
            fn = a.label("fn")
            a.lea(Mem(rip_relative=True, disp=0), RCX)  # placeholder
            # simpler: compute fn address via mov imm after binding; use
            # two-pass: jump over fn to a mov of its absolute address
            a.jmp_label(a_label_skip := a.label("skip"))
            a.bind(fn)
            a.mov_imm(7, RAX)
            a.ret()
            a.bind(a_label_skip)
            a.mov_imm(CODE_BASE + fn.offset, RCX)
            a.call_reg(RCX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[0] == 7

    def test_push_pop_frame(self):
        def build(a):
            a.mov_imm(0x77, RAX)
            a.push(RAX)
            a.push(RBP)
            a.pop(RBP)
            a.pop(RCX)
            a.ret()

        state, _, _ = run_asm(build)
        assert state.regs[1] == 0x77


class TestFaults:
    def test_fuel_exhaustion(self):
        def build(a):
            loop = a.label("loop")
            a.bind(loop)
            a.jmp_label(loop)

        with pytest.raises(FuelExhausted):
            run_asm(build, fuel=100)

    def test_ud2_faults(self):
        def build(a):
            a.ud2()

        with pytest.raises(ExecutionFault, match="ud2"):
            run_asm(build)

    def test_syscall_faults(self):
        def build(a):
            a.raw(Enc.syscall(), 1)

        with pytest.raises(ExecutionFault, match="OS services"):
            run_asm(build)

    def test_oob_memory_faults(self):
        def build(a):
            a.mov_imm(0xFFFFFF, RAX)
            a.mov_load(Mem(base=RAX), RCX)
            a.ret()

        with pytest.raises(ExecutionFault, match="read"):
            run_asm(build)

    def test_hooks_intercept(self):
        events = []

        def build(a):
            a.mov_imm(0, RAX)
            target = CODE_BASE + 0x100
            a.mov_imm(target, RCX)
            a.call_reg(RCX)
            a.alu_imm("add", 1, RAX)
            a.ret()

        def hook(interp):
            events.append("hooked")
            interp.state.regs[0] = 99

        state, _, _ = run_asm(build, hooks={CODE_BASE + 0x100: hook})
        assert events == ["hooked"]
        assert state.regs[0] == 100  # hook value + post-call add
