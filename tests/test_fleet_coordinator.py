"""Fleet coordinator battery: ring properties + crash/rebalance recovery.

Two halves, matching the satellite checklist:

* hypothesis property tests for :class:`~repro.service.
  ConsistentHashRing` — placement is a pure function of (shard ids,
  content digest); keys spread within a generous balance bound; removing
  a shard moves *only* that shard's keys; adding it back restores the
  original placement exactly,
* seeded :class:`~repro.faults.FaultPlan` shard-loss drills against a
  live :class:`~repro.service.FleetCoordinator` — transient injected
  faults stay typed errors on live shards (no spurious rebalance), a
  hard-killed shard is detected and its keys reroute to the
  deterministic successor, and every verdict delivered before, during,
  and after the loss/revival cycle is byte-identical to the serial
  :class:`~repro.core.EnGarde` oracle.
"""

from __future__ import annotations

import hashlib
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EnGarde
from repro.errors import FleetError
from repro.faults import FaultPlan, injected
from repro.faults.chaos import _TYPED_ERROR
from repro.service import (
    ConsistentHashRing,
    FleetCoordinator,
    generate_variant_corpus,
)

#: no test in this battery may wall-block longer than this (hang bound)
MAX_WALL_SECONDS = 120.0

shard_ids = st.lists(
    st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12),
    min_size=1, max_size=8, unique=True,
)
digests = st.binary(min_size=4, max_size=64).map(
    lambda b: hashlib.sha256(b).hexdigest()
)


# ------------------------------------------------------------ ring properties


class TestRingProperties:
    @given(ids=shard_ids, digest=digests)
    @settings(max_examples=100, deadline=None)
    def test_placement_is_deterministic(self, ids, digest):
        a = ConsistentHashRing(ids)
        b = ConsistentHashRing(reversed(ids))  # insertion order irrelevant
        assert a.locate(digest) == b.locate(digest)
        assert a.locate(digest) in ids

    @given(ids=shard_ids, digest=digests)
    @settings(max_examples=60, deadline=None)
    def test_remove_moves_only_the_lost_shards_keys(self, ids, digest):
        ring = ConsistentHashRing(ids)
        owner = ring.locate(digest)
        victim = sorted(ids)[0]
        ring.remove(victim)
        if not len(ring):
            with pytest.raises(FleetError):
                ring.locate(digest)
            return
        after = ring.locate(digest)
        if owner != victim:
            assert after == owner, "a surviving shard's key must not move"
        else:
            assert after != victim

    @given(ids=shard_ids, digest=digests)
    @settings(max_examples=60, deadline=None)
    def test_add_back_restores_original_placement(self, ids, digest):
        ring = ConsistentHashRing(ids)
        before = ring.locate(digest)
        victim = sorted(ids)[len(ids) // 2]
        ring.remove(victim)
        ring.add(victim)
        assert ring.locate(digest) == before

    @given(ids=shard_ids, new_id=st.text(
        alphabet="xyz", min_size=13, max_size=16
    ), digest=digests)
    @settings(max_examples=60, deadline=None)
    def test_add_moves_keys_only_to_the_new_shard(self, ids, new_id, digest):
        ring = ConsistentHashRing(ids)
        before = ring.locate(digest)
        ring.add(new_id)
        after = ring.locate(digest)
        assert after in (before, new_id), (
            "adding a shard must never shuffle keys between old shards"
        )

    def test_balance_within_bound(self):
        """With 64 vnodes per shard, 4 shards over 600 seeded digests
        each own a sane share — no shard starves, none hogs."""
        ids = [f"shard-{i}" for i in range(4)]
        ring = ConsistentHashRing(ids)
        counts = dict.fromkeys(ids, 0)
        for i in range(600):
            digest = hashlib.sha256(b"key-%d" % i).hexdigest()
            counts[ring.locate(digest)] += 1
        for sid, count in counts.items():
            share = count / 600
            assert 0.05 <= share <= 0.55, (
                f"{sid} owns {share:.0%} of keys: {counts}"
            )

    def test_empty_ring_is_a_typed_error(self):
        ring = ConsistentHashRing([])
        with pytest.raises(FleetError):
            ring.locate("ab" * 32)
        with pytest.raises(FleetError):
            ConsistentHashRing([], replicas=0)

    def test_idempotent_add_remove(self):
        ring = ConsistentHashRing(["a", "b"])
        points = ring.as_dict()["points"]
        ring.add("a")
        assert ring.as_dict()["points"] == points
        ring.remove("missing")
        assert ring.ids() == ("a", "b")


# --------------------------------------------------------------- coordinator


CORPUS_SIZE = 9


@pytest.fixture(scope="module")
def corpus(libc):
    return generate_variant_corpus(CORPUS_SIZE, libc=libc)


@pytest.fixture(scope="module")
def oracle(corpus, all_policies):
    engarde = EnGarde(all_policies)
    return {
        label: engarde.inspect(raw, benchmark=label).report.serialize()
        for label, raw in corpus
    }


def make_fleet(policies, **overrides) -> FleetCoordinator:
    kwargs = dict(
        shards=3,
        pool_size=1,
        rsa_bits=768,
        heap_pages=64,
        client_pages=64,
        enclave_pages=0x2000,
        read_timeout=30.0,
        client_timeout=30.0,
        max_connections=32,
    )
    kwargs.update(overrides)
    return FleetCoordinator(policies, **kwargs)


def submit_all(fleet, corpus):
    return [(label, fleet.submit(raw, label)) for label, raw in corpus]


class TestCoordinator:
    def test_every_verdict_matches_the_serial_oracle(
        self, all_policies, corpus, oracle
    ):
        with make_fleet(all_policies) as fleet:
            for label, verdict in submit_all(fleet, corpus):
                assert verdict.report is not None, (label, verdict.error)
                assert verdict.wire == oracle[label]

    def test_placement_is_by_content_digest(self, all_policies, corpus):
        with make_fleet(all_policies) as fleet:
            for _, raw in corpus:
                sid = fleet.shard_for(raw)
                assert sid == fleet.ring.locate(
                    hashlib.sha256(raw).hexdigest()
                )

    def test_unknown_shard_id_is_typed(self, all_policies):
        with make_fleet(all_policies, shards=1) as fleet:
            with pytest.raises(FleetError):
                fleet.kill_shard("shard-9")
        with pytest.raises(FleetError):
            make_fleet(all_policies, shards=0)

    def test_shard_identity_shows_in_daemon_status(self, all_policies):
        with make_fleet(all_policies, shards=2) as fleet:
            doc = fleet.shards["shard-1"].daemon.status()
            assert doc["shard"] == {
                "fleeted": True, "shard_id": "shard-1",
                "shard_index": 1, "fleet_size": 2,
            }

    def test_all_shards_dead_is_a_typed_fleet_error(
        self, all_policies, corpus
    ):
        with make_fleet(all_policies, shards=1) as fleet:
            fleet.kill_shard("shard-0")
            label, raw = corpus[0]
            verdict = fleet.submit(raw, label)
            assert verdict.report is None
            assert verdict.error is not None
            assert _TYPED_ERROR.match(verdict.error), verdict.error
            assert "FleetError" in verdict.error


class TestCrashRebalance:
    def test_kill_reroute_revive_byte_identical(
        self, all_policies, corpus, oracle
    ):
        """The full loss drill: healthy pass, hard-kill a shard, every
        submission still answers byte-identically (rerouted to the
        deterministic successor), revive, placement and verdicts revert."""
        t0 = time.monotonic()
        with make_fleet(all_policies) as fleet:
            placement = {
                label: fleet.shard_for(raw) for label, raw in corpus
            }
            for label, verdict in submit_all(fleet, corpus):
                assert verdict.wire == oracle[label]

            victim = fleet.shard_for(corpus[0][1])
            fleet.kill_shard(victim)
            assert fleet.detect_losses() == [victim]
            assert victim not in fleet.live_shards()

            for label, verdict in submit_all(fleet, corpus):
                assert verdict.report is not None, (label, verdict.error)
                assert verdict.wire == oracle[label]
                owner = fleet.shard_for(corpus_raw(corpus, label))
                assert owner != victim
                if placement[label] != victim:
                    assert owner == placement[label], (
                        "a surviving shard's key must not move"
                    )

            fleet.revive_shard(victim)
            assert victim in fleet.live_shards()
            for label, raw in corpus:
                assert fleet.shard_for(raw) == placement[label]
            for label, verdict in submit_all(fleet, corpus):
                assert verdict.wire == oracle[label]
        assert time.monotonic() - t0 < MAX_WALL_SECONDS, "drill hung"

    def test_loss_detected_mid_submission_reroutes(
        self, all_policies, corpus, oracle
    ):
        """No explicit detect_losses(): the first submission that needs
        the dead shard discovers the loss and reroutes itself."""
        with make_fleet(all_policies) as fleet:
            victim = fleet.shard_for(corpus[0][1])
            fleet.kill_shard(victim)
            for label, verdict in submit_all(fleet, corpus):
                assert verdict.report is not None, (label, verdict.error)
                assert verdict.wire == oracle[label]
            assert victim not in fleet.live_shards()
            counters = fleet.status()["counters"]
            assert counters["shards_lost"] == 1
            assert counters["losses"] == [victim]
            assert counters["reroutes"] >= 1

    def test_seeded_faults_stay_typed_and_never_rebalance(
        self, all_policies, corpus, oracle
    ):
        """PR 4 fault vocabulary against live shards: every failure is a
        typed error (fail closed), every success is byte-identical, and
        transient faults never get a shard marked lost."""
        t0 = time.monotonic()
        plan = FaultPlan.randomized(
            1309,
            hooks=(
                "net.sock.send", "net.sock.recv",
                "crypto.channel.send", "crypto.channel.recv",
            ),
            kinds=("raise", "truncate", "bitflip", "drop"),
            n_specs=4,
            probability=0.15,
        )
        with make_fleet(all_policies) as fleet:
            with injected(plan):
                results = [
                    (label, fleet.submit(raw, label))
                    for label, raw in corpus * 3
                ]
            for label, verdict in results:
                if verdict.report is not None:
                    assert verdict.wire == oracle[label]
                else:
                    assert verdict.error is not None
                    assert _TYPED_ERROR.match(verdict.error), verdict.error
            assert len(fleet.live_shards()) == 3, (
                "transient faults must never cost a live shard its ring slot"
            )
            # the fleet recovers fully once the plan is lifted
            for label, verdict in submit_all(fleet, corpus):
                assert verdict.wire == oracle[label]
        assert time.monotonic() - t0 < MAX_WALL_SECONDS, "fault drill hung"

    def test_seeded_fault_drill_is_reproducible(
        self, all_policies, corpus
    ):
        """Same seed, same corpus, fresh fleet: the drill's outcome
        labels (delivered vs typed-error) replay identically."""

        def run() -> list[tuple[str, bool]]:
            plan = FaultPlan.randomized(
                7411,
                hooks=("crypto.channel.send", "crypto.channel.recv"),
                kinds=("raise", "bitflip"),
                n_specs=3,
                probability=0.2,
            )
            with make_fleet(all_policies, shards=2) as fleet:
                with injected(plan):
                    return [
                        (label, fleet.submit(raw, label).report is not None)
                        for label, raw in corpus
                    ]

        assert run() == run()


def corpus_raw(corpus, label: str) -> bytes:
    return next(raw for lab, raw in corpus if lab == label)
