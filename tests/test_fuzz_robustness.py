"""Fuzz-style robustness: EnGarde consumes untrusted bytes everywhere.

The decoder, ELF reader, and report parser all face attacker-controlled
input; whatever the bytes, they must either succeed or raise their typed
error — never crash with an unrelated exception.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComplianceReport, Disassembler
from repro.elf import read_elf
from repro.errors import DecodeError, ElfError, RejectionError
from repro.sgx import CycleMeter
from repro.x86 import Instruction, decode_one


@given(st.binary(min_size=1, max_size=20))
@settings(max_examples=500, deadline=None)
def test_decoder_total_on_arbitrary_bytes(data):
    try:
        insn = decode_one(data, 0)
    except DecodeError:
        return
    assert isinstance(insn, Instruction)
    assert 1 <= insn.length <= 15
    assert insn.raw == data[:insn.length]
    # metadata is internally consistent
    assert insn.num_prefix_bytes + insn.num_opcode_bytes <= insn.length
    str(insn)  # formatting never crashes


@given(st.binary(max_size=512))
@settings(max_examples=200, deadline=None)
def test_elf_reader_total_on_arbitrary_bytes(data):
    try:
        read_elf(data)
    except ElfError:
        pass


def _demo_elf() -> bytes:
    from repro.toolchain import build_libc
    from tests.conftest import compile_demo

    global _DEMO_CACHE
    try:
        return _DEMO_CACHE
    except NameError:
        _DEMO_CACHE = compile_demo(build_libc(), name="fuzz").elf
        return _DEMO_CACHE


@given(st.binary(min_size=64, max_size=600))
@settings(max_examples=100, deadline=None)
def test_elf_reader_on_mutated_valid_image(data):
    # splice attacker bytes into a valid image
    blob = bytearray(_demo_elf())
    start = min(len(blob) - len(data) - 1, 64)
    blob[start:start + len(data)] = data
    try:
        read_elf(bytes(blob))
    except ElfError:
        pass


@given(st.binary(max_size=800))
@settings(max_examples=100, deadline=None)
def test_engarde_pipeline_rejects_garbage_gracefully(data):
    try:
        Disassembler(CycleMeter()).run(data)
    except RejectionError as exc:
        assert exc.stage in ("elf", "page-split", "disasm")


@given(st.text(max_size=300))
@settings(max_examples=100, deadline=None)
def test_report_deserialize_total(text):
    try:
        report = ComplianceReport.deserialize(text.encode())
    except (ValueError, UnicodeDecodeError):
        return
    assert isinstance(report.compliant, bool)


def test_truncations_of_valid_binary_all_rejected_or_handled():
    """Every prefix truncation of a valid ELF is either parsed or cleanly
    rejected (no IndexError/struct.error escapes)."""
    blob = _demo_elf()
    for cut in range(0, len(blob), max(len(blob) // 64, 1)):
        try:
            Disassembler(CycleMeter()).run(blob[:cut])
        except RejectionError:
            pass


# ------------------------------------------------- corpus under faults
#
# The same robustness property, but with the *infrastructure* misbehaving
# instead of the input: the fuzz corpus flows through the batch service
# while seeded fault plans corrupt, drop, and hang the pipeline's hook
# points.  Fixed seeds make every CI failure replayable bit-for-bit.

import json

import pytest

from repro.faults.chaos import run_soak


def _fuzz_corpus() -> list[tuple[str, bytes]]:
    """Good, policy-rejected, truncated, and garbage inputs — the same
    verdict mix the byte-level fuzzers above exercise."""
    blob = _demo_elf()
    return [
        ("valid", blob),
        ("truncated-quarter", blob[: len(blob) // 4]),
        ("truncated-header", blob[:32]),
        ("garbage", b"\x7fNOT-AN-ELF" + bytes(range(256))),
        ("empty", b""),
        ("duplicate-valid", blob),
    ]


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_fuzz_corpus_routed_through_fault_hooks(all_policies, seed):
    """Seeded chaos pass over the fuzz corpus: no false accepts, no
    hangs, no untyped failures — reproducible from the printed seed."""
    result = run_soak(
        all_policies,
        _fuzz_corpus(),
        seeds=(seed,),
        n_specs=8,
        probability=0.5,
        quarantine_threshold=3,
    )
    assert result.ok, "\n".join(result.summary_lines())
    assert result.faults_fired > 0, f"seed {seed} fired no faults"


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_report_json_schema_valid_under_faults(all_policies, seed):
    """``BatchReport.to_json()`` must stay schema-valid whatever faults
    the service absorbed."""
    from repro.faults import FakeClock, FaultPlan, injected
    from repro.service import BatchInspector

    clock = FakeClock()
    plan = FaultPlan.randomized(
        seed,
        hooks=("elf.reader", "x86.decoder", "service.batch.worker",
               "service.batch.verdict"),
        n_specs=8, probability=0.5, clock=clock,
    )
    inspector = BatchInspector(
        all_policies, mode="serial", cache=False,
        retries=1, deadline=5.0, clock=clock,
    )
    with injected(plan):
        report = inspector.inspect_batch(_fuzz_corpus())

    payload = json.loads(report.to_json())
    assert set(payload) == {"summary", "results"}
    summary = payload["summary"]
    for field in ("total", "accepted", "rejected", "errors", "cache_hits",
                  "deduplicated", "inspected", "wall_seconds",
                  "binaries_per_second", "workers", "mode", "cache"):
        assert field in summary, f"summary lost {field!r} under seed {seed}"
    assert summary["total"] == len(_fuzz_corpus())
    assert (summary["accepted"] + summary["rejected"] + summary["errors"]
            == summary["total"])
    for item in payload["results"]:
        assert set(item) == {"index", "label", "accepted", "source",
                             "error", "report"}
        assert isinstance(item["accepted"], bool)
        # exactly one of report/error per item
        assert (item["report"] is None) == (item["error"] is not None)
