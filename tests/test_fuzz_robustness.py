"""Fuzz-style robustness: EnGarde consumes untrusted bytes everywhere.

The decoder, ELF reader, and report parser all face attacker-controlled
input; whatever the bytes, they must either succeed or raise their typed
error — never crash with an unrelated exception.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComplianceReport, Disassembler
from repro.elf import read_elf
from repro.errors import DecodeError, ElfError, RejectionError
from repro.sgx import CycleMeter
from repro.x86 import Instruction, decode_one


@given(st.binary(min_size=1, max_size=20))
@settings(max_examples=500, deadline=None)
def test_decoder_total_on_arbitrary_bytes(data):
    try:
        insn = decode_one(data, 0)
    except DecodeError:
        return
    assert isinstance(insn, Instruction)
    assert 1 <= insn.length <= 15
    assert insn.raw == data[:insn.length]
    # metadata is internally consistent
    assert insn.num_prefix_bytes + insn.num_opcode_bytes <= insn.length
    str(insn)  # formatting never crashes


@given(st.binary(max_size=512))
@settings(max_examples=200, deadline=None)
def test_elf_reader_total_on_arbitrary_bytes(data):
    try:
        read_elf(data)
    except ElfError:
        pass


def _demo_elf() -> bytes:
    from repro.toolchain import build_libc
    from tests.conftest import compile_demo

    global _DEMO_CACHE
    try:
        return _DEMO_CACHE
    except NameError:
        _DEMO_CACHE = compile_demo(build_libc(), name="fuzz").elf
        return _DEMO_CACHE


@given(st.binary(min_size=64, max_size=600))
@settings(max_examples=100, deadline=None)
def test_elf_reader_on_mutated_valid_image(data):
    # splice attacker bytes into a valid image
    blob = bytearray(_demo_elf())
    start = min(len(blob) - len(data) - 1, 64)
    blob[start:start + len(data)] = data
    try:
        read_elf(bytes(blob))
    except ElfError:
        pass


@given(st.binary(max_size=800))
@settings(max_examples=100, deadline=None)
def test_engarde_pipeline_rejects_garbage_gracefully(data):
    try:
        Disassembler(CycleMeter()).run(data)
    except RejectionError as exc:
        assert exc.stage in ("elf", "page-split", "disasm")


@given(st.text(max_size=300))
@settings(max_examples=100, deadline=None)
def test_report_deserialize_total(text):
    try:
        report = ComplianceReport.deserialize(text.encode())
    except (ValueError, UnicodeDecodeError):
        return
    assert isinstance(report.compliant, bool)


def test_truncations_of_valid_binary_all_rejected_or_handled():
    """Every prefix truncation of a valid ELF is either parsed or cleanly
    rejected (no IndexError/struct.error escapes)."""
    blob = _demo_elf()
    for cut in range(0, len(blob), max(len(blob) // 64, 1)):
        try:
            Disassembler(CycleMeter()).run(blob[:cut])
        except RejectionError:
            pass
