"""SymbolHashTable and PolicyContext plumbing."""

from __future__ import annotations

import pytest

from repro.core import Disassembler, PolicyRegistry, SymbolHashTable
from repro.core.policy import MAX_VIOLATIONS, PolicyResult
from repro.errors import PolicyError
from repro.sgx import CycleMeter


class TestSymbolHashTable:
    def test_insert_lookup(self):
        table = SymbolHashTable(CycleMeter())
        table.insert(0x100, "foo")
        assert table.lookup(0x100) == "foo"
        assert table.lookup(0x101) is None
        assert 0x100 in table and 0x200 not in table
        assert len(table) == 1

    def test_is_function_start(self):
        table = SymbolHashTable(CycleMeter())
        table.insert(0, "a")
        assert table.is_function_start(0)
        assert not table.is_function_start(1)

    def test_next_function_start(self):
        table = SymbolHashTable(CycleMeter())
        for addr in (0x300, 0x100, 0x200):
            table.insert(addr, f"f{addr:x}")
        assert table.next_function_start(0x100) == 0x200
        assert table.next_function_start(0x150) == 0x200
        assert table.next_function_start(0x300) is None

    def test_next_function_start_after_late_insert(self):
        table = SymbolHashTable(CycleMeter())
        table.insert(0x100, "a")
        assert table.next_function_start(0) == 0x100
        table.insert(0x50, "b")  # must invalidate the sorted cache
        assert table.next_function_start(0) == 0x50

    def test_lookups_are_charged(self):
        meter = CycleMeter()
        table = SymbolHashTable(meter)
        table.insert(0, "f")
        before = meter.total_cycles
        table.lookup(0)
        table.is_function_start(0)
        assert meter.total_cycles == before + 2 * meter.cost.symtab_lookup


class TestPolicyContext:
    @pytest.fixture()
    def ctx(self, demo_plain):
        meter = CycleMeter()
        return Disassembler(meter).run(demo_plain.elf).policy_context(meter)

    def test_at(self, ctx):
        first = ctx.instructions[0]
        assert ctx.at(first.offset) is first
        assert ctx.at(first.offset + 1) is None or first.length == 1

    def test_function_extent_covers_whole_text(self, ctx):
        starts = sorted(addr for addr, _name in ctx.symtab.items())
        covered = 0
        for start in starts:
            first, last = ctx.function_extent(start)
            covered += last - first
        assert covered == len(ctx.instructions) - starts_to_first(ctx, starts)

    def test_function_extent_bad_start(self, ctx):
        with pytest.raises(PolicyError):
            ctx.function_extent(0x999999)

    def test_function_starts_sorted(self, ctx):
        starts = ctx.function_starts()
        assert starts == sorted(starts)
        names = {name for _a, name in starts}
        assert "_start" in names and "main" in names


def starts_to_first(ctx, starts):
    """Instructions before the first symbol (e.g. none in our layout)."""
    first_idx = ctx.index_by_offset[starts[0]]
    return first_idx


class TestPolicyResult:
    def test_violation_cap(self):
        result = PolicyResult(policy="p", compliant=True)
        for i in range(MAX_VIOLATIONS + 20):
            result.add_violation(f"v{i}")
        assert not result.compliant
        assert len(result.violations) == MAX_VIOLATIONS

    def test_registry_digest_material_sorted(self):
        from repro.core.policy import PolicyModule

        class P1(PolicyModule):
            name = "b-policy"

            def check(self, ctx):
                raise NotImplementedError

        class P2(PolicyModule):
            name = "a-policy"

            def check(self, ctx):
                raise NotImplementedError

        a = PolicyRegistry()
        a.register(P1())
        a.register(P2())
        b = PolicyRegistry()
        b.register(P2())
        b.register(P1())
        assert a.digest_material() == b.digest_material()

    def test_registry_digest_covers_config(self):
        from repro.core import IfccPolicy

        a = PolicyRegistry([IfccPolicy(backward_window=12)])
        b = PolicyRegistry([IfccPolicy(backward_window=13)])
        assert a.digest_material() != b.digest_material()
