"""SymbolHashTable and PolicyContext plumbing."""

from __future__ import annotations

import pytest

from repro.core import Disassembler, PolicyRegistry, SymbolHashTable
from repro.core.policy import MAX_VIOLATIONS, PolicyResult
from repro.errors import PolicyError
from repro.sgx import CycleMeter


class TestSymbolHashTable:
    def test_insert_lookup(self):
        table = SymbolHashTable(CycleMeter())
        table.insert(0x100, "foo")
        assert table.lookup(0x100) == "foo"
        assert table.lookup(0x101) is None
        assert 0x100 in table and 0x200 not in table
        assert len(table) == 1

    def test_is_function_start(self):
        table = SymbolHashTable(CycleMeter())
        table.insert(0, "a")
        assert table.is_function_start(0)
        assert not table.is_function_start(1)

    def test_next_function_start(self):
        table = SymbolHashTable(CycleMeter())
        for addr in (0x300, 0x100, 0x200):
            table.insert(addr, f"f{addr:x}")
        assert table.next_function_start(0x100) == 0x200
        assert table.next_function_start(0x150) == 0x200
        assert table.next_function_start(0x300) is None

    def test_next_function_start_after_late_insert(self):
        table = SymbolHashTable(CycleMeter())
        table.insert(0x100, "a")
        assert table.next_function_start(0) == 0x100
        table.insert(0x50, "b")  # must invalidate the sorted cache
        assert table.next_function_start(0) == 0x50

    def test_lookups_are_charged(self):
        meter = CycleMeter()
        table = SymbolHashTable(meter)
        table.insert(0, "f")
        before = meter.total_cycles
        table.lookup(0)
        table.is_function_start(0)
        assert meter.total_cycles == before + 2 * meter.cost.symtab_lookup


class TestPolicyContext:
    @pytest.fixture()
    def ctx(self, demo_plain):
        meter = CycleMeter()
        return Disassembler(meter).run(demo_plain.elf).policy_context(meter)

    def test_at(self, ctx):
        first = ctx.instructions[0]
        assert ctx.at(first.offset) is first
        assert ctx.at(first.offset + 1) is None or first.length == 1

    def test_function_extent_covers_whole_text(self, ctx):
        starts = sorted(addr for addr, _name in ctx.symtab.items())
        covered = 0
        for start in starts:
            first, last = ctx.function_extent(start)
            covered += last - first
        assert covered == len(ctx.instructions) - starts_to_first(ctx, starts)

    def test_function_extent_bad_start(self, ctx):
        with pytest.raises(PolicyError):
            ctx.function_extent(0x999999)

    def test_function_starts_sorted(self, ctx):
        starts = ctx.function_starts()
        assert starts == sorted(starts)
        names = {name for _a, name in starts}
        assert "_start" in names and "main" in names


def starts_to_first(ctx, starts):
    """Instructions before the first symbol (e.g. none in our layout)."""
    first_idx = ctx.index_by_offset[starts[0]]
    return first_idx


class TestPolicyResult:
    def test_violation_cap(self):
        result = PolicyResult(policy="p", compliant=True)
        for i in range(MAX_VIOLATIONS + 20):
            result.add_violation(f"v{i}")
        assert not result.compliant
        assert len(result.violations) == MAX_VIOLATIONS

    def test_registry_digest_material_sorted(self):
        from repro.core.policy import PolicyModule

        class P1(PolicyModule):
            name = "b-policy"

            def check(self, ctx):
                raise NotImplementedError

        class P2(PolicyModule):
            name = "a-policy"

            def check(self, ctx):
                raise NotImplementedError

        a = PolicyRegistry()
        a.register(P1())
        a.register(P2())
        b = PolicyRegistry()
        b.register(P2())
        b.register(P1())
        assert a.digest_material() == b.digest_material()

    def test_registry_digest_covers_config(self):
        from repro.core import IfccPolicy

        a = PolicyRegistry([IfccPolicy(backward_window=12)])
        b = PolicyRegistry([IfccPolicy(backward_window=13)])
        assert a.digest_material() != b.digest_material()


class TestSortedStartsCacheCoherence:
    """PR 3 satellite: ``import bisect`` is hoisted to module level and the
    sorted-starts cache must stay coherent when inserts and lookups
    interleave arbitrarily."""

    def test_bisect_is_module_level(self):
        import bisect as bisect_mod
        import inspect as inspect_mod

        import repro.core.policy as policy_mod

        assert policy_mod.bisect is bisect_mod
        source = inspect_mod.getsource(
            SymbolHashTable.next_function_start
        )
        assert "import bisect" not in source

    def test_interleaved_insert_lookup(self):
        table = SymbolHashTable(CycleMeter())
        table.insert(0x400, "d")
        assert table.next_function_start(0) == 0x400
        table.insert(0x100, "a")
        assert table.next_function_start(0) == 0x100
        assert table.next_function_start(0x100) == 0x400
        table.insert(0x200, "b")
        table.insert(0x300, "c")
        assert table.next_function_start(0x100) == 0x200
        assert table.next_function_start(0x250) == 0x300
        table.insert(0x50, "e")
        assert table.next_function_start(0) == 0x50
        assert table.next_function_start(0x400) is None

    def test_interleaving_matches_fresh_table(self):
        """Any insert/lookup interleaving answers as if freshly built."""
        addrs = [0x500, 0x80, 0x320, 0x40, 0x260, 0x700, 0x10]
        table = SymbolHashTable(CycleMeter())
        inserted: list[int] = []
        for addr in addrs:
            table.insert(addr, f"f{addr:x}")
            inserted.append(addr)
            ordered = sorted(inserted)
            for probe in (0, addr - 1, addr, addr + 1, 0x1000):
                expected = next(
                    (a for a in ordered if a > probe), None
                )
                assert table.next_function_start(probe) == expected, (
                    f"probe {probe:#x} after inserting {addr:#x}"
                )


class TestCachedContextEquivalence:
    """PR 3 satellite: the shared prescan (``cached=True``) must answer and
    charge exactly like the uncached per-policy walk."""

    @pytest.fixture()
    def result(self, demo_plain):
        meter = CycleMeter()
        return Disassembler(meter).run(demo_plain.elf), meter

    def test_call_site_views_match_manual_scan(self, result):
        disasm, meter = result
        cached = disasm.policy_context(meter, cached=True)
        uncached = disasm.policy_context(CycleMeter(), cached=False)

        direct = [
            insn for insn in cached.instructions if insn.is_direct_call
        ]
        indirect = [
            i for i, insn in enumerate(cached.instructions)
            if insn.is_indirect_call or insn.is_indirect_jump
        ]
        assert cached.direct_calls() == direct
        assert cached.indirect_calls() == indirect
        assert uncached.direct_calls() == direct
        assert uncached.indirect_calls() == indirect
        # The cached views are computed once and then reused.
        assert cached.direct_calls() is cached.direct_calls()

    def test_function_extent_charges_identically_when_cached(self, demo_plain):
        # One meter per pipeline, as in production: the symtab boundary
        # probe and the walk charges must land on the same meter.
        def extent_charges(cached: bool):
            meter = CycleMeter()
            ctx = Disassembler(meter).run(demo_plain.elf).policy_context(
                meter, cached=cached
            )
            starts = [addr for addr, _name in ctx.function_starts()]
            before = meter.total_cycles
            # Hit every extent twice: the second cached round hits the
            # cache yet must charge the same cycles as the uncached walk.
            extents = [
                ctx.function_extent(start)
                for _round in range(2) for start in starts
            ]
            return extents, meter.total_cycles - before

        extents_c, cycles_c = extent_charges(cached=True)
        extents_u, cycles_u = extent_charges(cached=False)
        assert extents_c == extents_u
        assert cycles_c == cycles_u

    def test_function_starts_cached_view_matches(self, result):
        disasm, meter = result
        cached = disasm.policy_context(meter, cached=True)
        uncached = disasm.policy_context(CycleMeter(), cached=False)
        assert cached.function_starts() == uncached.function_starts()
        assert cached.function_starts() is cached.function_starts()
