"""EnGarde's in-enclave disassembly stage: checks, rejection, buffers."""

from __future__ import annotations

import pytest

from repro.core import Disassembler
from repro.elf import ElfSymbol, Layout, write_elf
from repro.errors import RejectionError
from repro.sgx import CycleMeter
from repro.x86 import Assembler, Enc, RAX
from tests.conftest import compile_demo


@pytest.fixture()
def disassembler():
    return Disassembler(CycleMeter())


def tiny_elf(*, text=None, symbols="ok", entry_delta=0):
    asm = Assembler()
    asm.mov_imm(1, RAX)
    asm.ret()
    text = asm.finish() if text is None else text
    layout = Layout.compute(len(text), 0, 16, 16)
    syms = []
    if symbols == "ok":
        syms = [ElfSymbol("_start", layout.text_vaddr, len(text), "func", "text")]
    elif symbols == "outside":
        syms = [
            ElfSymbol("_start", layout.text_vaddr, len(text), "func", "text"),
            ElfSymbol("ghost", layout.text_vaddr + len(text) + 64, 4, "func", "text"),
        ]
    return write_elf(
        text=text, data=b"\x00" * 16, bss_size=16, symbols=syms,
        relocations=[], entry_vaddr=layout.text_vaddr + entry_delta,
        layout=layout,
    )


class TestRun:
    def test_accepts_demo_binary(self, disassembler, demo_plain):
        result = disassembler.run(demo_plain.elf)
        assert len(result.instructions) == demo_plain.insn_count
        assert len(result.symtab) > 0
        assert result.text_vaddr == 0x1000

    def test_symbol_table_is_offset_to_name(self, disassembler, demo_plain):
        result = disassembler.run(demo_plain.elf)
        entry_off = result.image.entry - result.text_vaddr
        assert result.symtab.lookup(entry_off) == "_start"

    def test_buffer_pages_tracked(self, disassembler, demo_plain):
        result = disassembler.run(demo_plain.elf)
        expected = (demo_plain.insn_count * 64 + 4095) // 4096
        assert result.buffer_pages_allocated == expected

    def test_alloc_callback_invoked(self, demo_plain):
        calls = []
        d = Disassembler(CycleMeter(), alloc_pages=lambda n: calls.append(n))
        d.run(demo_plain.elf)
        assert len(calls) == (demo_plain.insn_count * 64 + 4095) // 4096

    def test_per_insn_malloc_ablation(self, demo_plain):
        calls = []
        d = Disassembler(
            CycleMeter(), alloc_pages=lambda n: calls.append(n),
            per_insn_malloc=True,
        )
        d.run(demo_plain.elf)
        assert len(calls) == demo_plain.insn_count


class TestRejections:
    def test_not_an_elf(self, disassembler):
        with pytest.raises(RejectionError) as exc:
            disassembler.run(b"\x7fNOT-ELF" + bytes(200))
        assert exc.value.stage == "elf"

    def test_stripped_binary_rejected(self, disassembler):
        blob = tiny_elf(symbols="none")
        with pytest.raises(RejectionError, match="stripped"):
            disassembler.run(blob)

    def test_undecodable_code_rejected(self, disassembler):
        blob = tiny_elf(text=b"\x06\x07\x08" + Enc.ret())
        with pytest.raises(RejectionError) as exc:
            disassembler.run(blob)
        assert exc.value.stage == "disasm"

    def test_bundle_straddling_rejected(self, disassembler):
        asm = Assembler(bundle=False)
        for _ in range(5):
            asm.mov_imm(0x1122334455667788, RAX)  # 10 bytes, will straddle
        asm.ret()
        with pytest.raises(RejectionError, match="NaCl"):
            disassembler.run(tiny_elf(text=asm.finish()))

    def test_unreachable_code_rejected(self, disassembler):
        text = Enc.ret() + Enc.mov_imm(1, RAX) + Enc.ret()
        with pytest.raises(RejectionError, match="NaCl"):
            disassembler.run(tiny_elf(text=text))

    def test_branch_into_instruction_rejected(self, disassembler):
        text = Enc.jmp_rel8(3) + Enc.mov_imm(7, RAX.as_bits(32)) + Enc.ret()
        with pytest.raises(RejectionError, match="NaCl"):
            disassembler.run(tiny_elf(text=text))

    def test_symbol_outside_text_rejected(self, disassembler):
        with pytest.raises(RejectionError, match="outside"):
            disassembler.run(tiny_elf(symbols="outside"))

    def test_entry_mid_instruction_rejected(self, disassembler):
        with pytest.raises(RejectionError):
            disassembler.run(tiny_elf(entry_delta=1))


class TestCycleCharging:
    def test_charges_per_byte_and_insn(self, demo_plain):
        meter = CycleMeter()
        Disassembler(meter).run(demo_plain.elf)
        events = meter.total.events
        assert events["decode_insn"] == demo_plain.insn_count
        assert events["buffer_store"] == demo_plain.insn_count
        assert events["decode_byte"] == demo_plain.text_size
        assert events["symtab_insert"] == len(
            Disassembler(CycleMeter()).run(demo_plain.elf).symtab
        )

    def test_deterministic_cycles(self, demo_plain):
        def run():
            meter = CycleMeter()
            Disassembler(meter).run(demo_plain.elf)
            return meter.total_cycles

        assert run() == run()


class TestTextSectionArity:
    """The one-text-section check must run before any indexing (PR 3
    reordered it so multi-/zero-text images reject with stage="disasm"
    instead of depending on parse order)."""

    def test_multi_text_image_rejects_with_disasm_stage(self, disassembler):
        import dataclasses

        from repro.elf import read_elf

        image = read_elf(tiny_elf())
        clone = dataclasses.replace(
            image.text_sections[0], name=".text.clone"
        )
        multi = dataclasses.replace(
            image, sections=image.sections + [clone]
        )
        assert len(multi.text_sections) == 2
        with pytest.raises(RejectionError) as excinfo:
            disassembler.disassemble(multi)
        assert excinfo.value.stage == "disasm"

    def test_textless_image_rejects_instead_of_crashing(self, disassembler):
        import dataclasses

        from repro.elf import read_elf

        image = read_elf(tiny_elf())
        textless = dataclasses.replace(
            image, sections=[s for s in image.sections if not s.is_text]
        )
        assert not textless.text_sections
        # Indexing text_sections[0] first would raise IndexError here.
        with pytest.raises(RejectionError) as excinfo:
            disassembler.disassemble(textless)
        assert excinfo.value.stage == "disasm"
