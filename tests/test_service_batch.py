"""The batched inspection service, held differential to the sequential core.

The tentpole oracle: over a ≥50-binary corpus of compliant, policy-
rejected, and structurally-rejected variants, every report produced by
the batch path — accept/reject bit, failed-policy list, rejection stage,
executable-page list — must serialize byte-identically to what a lone
``EnGarde.inspect`` produces, in every execution mode, with the cache
cold, warm, or shared.  Plus: error isolation, per-binary timeouts,
in-flight dedup, and a concurrency soak.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import EnGarde, PolicyRegistry, StackProtectionPolicy
from repro.service import (
    BatchInspector,
    InspectionCache,
    generate_variant_corpus,
)

CORPUS_SIZE = 52


@pytest.fixture(scope="module")
def corpus(libc):
    return generate_variant_corpus(CORPUS_SIZE, libc=libc)


@pytest.fixture(scope="module")
def baseline(corpus, all_policies):
    """Sequential ground truth: one EnGarde, one binary at a time."""
    engarde = EnGarde(all_policies)
    return [
        engarde.inspect(raw, benchmark=label).report.serialize()
        for label, raw in corpus
    ]


def _assert_identical(results, baseline, corpus):
    assert len(results) == len(baseline)
    for i, (item, wire) in enumerate(zip(results, baseline)):
        assert item.index == i
        assert item.label == corpus[i][0]
        assert item.error is None, (item.label, item.error)
        assert item.report.serialize() == wire, item.label


class TestDifferential:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_batch_matches_sequential_baseline(
        self, mode, corpus, baseline, all_policies
    ):
        with BatchInspector(all_policies, workers=4, mode=mode) as inspector:
            report = inspector.inspect_batch(corpus)
        _assert_identical(report.results, baseline, corpus)
        summary = report.summary
        assert summary.total == CORPUS_SIZE
        assert summary.errors == 0
        assert summary.accepted + summary.rejected == CORPUS_SIZE
        # the corpus contains every verdict class
        assert summary.accepted > 0 and summary.rejected > 0

    def test_warm_cache_does_not_change_any_verdict(
        self, corpus, baseline, all_policies
    ):
        with BatchInspector(all_policies, workers=4, mode="process") as bi:
            bi.inspect_batch(corpus)
            warm = bi.inspect_batch(corpus)
        _assert_identical(warm.results, baseline, corpus)
        assert warm.summary.cache_hits == CORPUS_SIZE
        assert warm.summary.inspected == 0

    def test_order_is_submission_order_not_completion_order(
        self, corpus, baseline, all_policies
    ):
        reordered = list(reversed(corpus))
        with BatchInspector(
            all_policies, workers=4, mode="thread", cache=False
        ) as bi:
            report = bi.inspect_batch(reordered)
        _assert_identical(report.results, list(reversed(baseline)), reordered)

    def test_accept_bits_and_page_lists_match(
        self, corpus, baseline, all_policies
    ):
        """Field-level check, not just the wire bytes."""
        from repro.core import ComplianceReport

        with BatchInspector(all_policies, mode="serial") as bi:
            report = bi.inspect_batch(corpus)
        for item, wire in zip(report.results, baseline):
            expected = ComplianceReport.deserialize(wire)
            assert item.accepted == expected.compliant
            assert item.report.executable_pages == expected.executable_pages
            assert item.report.policies_failed == expected.policies_failed
            assert item.report.rejected_stage == expected.rejected_stage


class TestIsolationAndDedup:
    def test_malformed_elves_reject_without_killing_the_batch(
        self, corpus, all_policies
    ):
        with BatchInspector(all_policies, workers=2, mode="process") as bi:
            report = bi.inspect_batch(corpus)
        by_kind = {}
        for item in report.results:
            by_kind.setdefault(item.label.split("-", 1)[1], []).append(item)
        for item in by_kind["garbage"] + by_kind["truncated"]:
            assert item.error is None          # rejected, not errored
            assert not item.accepted
            assert item.report.rejected_stage in ("elf", "disasm")
        assert any(i.accepted for i in by_kind["compliant"])

    def test_unexpected_crash_is_isolated_to_its_binary(
        self, corpus, all_policies, monkeypatch
    ):
        poison = corpus[0][1]
        original = EnGarde.inspect

        def crashing(self, raw_elf, *, benchmark="client"):
            if raw_elf == poison:
                raise RuntimeError("simulated pipeline crash")
            return original(self, raw_elf, benchmark=benchmark)

        monkeypatch.setattr(EnGarde, "inspect", crashing)
        with BatchInspector(
            all_policies, workers=2, mode="thread", cache=False
        ) as bi:
            report = bi.inspect_batch(corpus[:6])
        crashed = [r for r in report.results if r.error is not None]
        assert [r.index for r in crashed] == [0]
        assert "simulated pipeline crash" in crashed[0].error
        assert all(r.report is not None for r in report.results[1:])
        assert report.summary.errors == 1

    def test_per_binary_timeout_marks_only_the_slow_binary(
        self, corpus, all_policies, monkeypatch
    ):
        slow = corpus[2][1]
        original = EnGarde.inspect

        def sluggish(self, raw_elf, *, benchmark="client"):
            if raw_elf == slow:
                time.sleep(2.0)
            return original(self, raw_elf, benchmark=benchmark)

        monkeypatch.setattr(EnGarde, "inspect", sluggish)
        with BatchInspector(
            all_policies, workers=4, mode="thread", cache=False, timeout=0.5
        ) as bi:
            report = bi.inspect_batch(corpus[:6])
        timed_out = [r for r in report.results if r.error is not None]
        assert [r.index for r in timed_out] == [2]
        assert "timeout" in timed_out[0].error
        assert sum(1 for r in report.results if r.report is not None) == 5

    def test_duplicate_bytes_are_inspected_once(self, corpus, all_policies):
        label, raw = corpus[0]
        batch = [("first", raw), ("second", raw), ("third", raw)]
        with BatchInspector(all_policies, mode="serial") as bi:
            report = bi.inspect_batch(batch)
        assert report.summary.inspected == 1
        assert report.summary.deduplicated == 2
        wires = {r.report.serialize() for r in report.results}
        assert len(wires) == 3                 # labels differ...
        verdicts = {
            r.report.serialize().split(b"\n", 1)[1] for r in report.results
        }
        assert len(verdicts) == 1              # ...but verdicts do not

    def test_bare_bytes_and_bad_items_get_positional_labels(
        self, corpus, all_policies
    ):
        with BatchInspector(all_policies, mode="serial") as bi:
            report = bi.inspect_batch([corpus[0][1], ("bad", None)])
        assert report.results[0].label == "binary-0"
        assert report.results[0].report is not None
        assert report.results[1].error is not None
        assert report.summary.errors == 1


class TestCachePolicyIsolation:
    def test_shared_cache_cannot_leak_across_policy_digests(
        self, corpus, libc, all_policies
    ):
        """Two agreements sharing one cache: a compliant-under-lenient
        binary must still be rejected under the strict agreement."""
        shared = InspectionCache()
        # find a variant that is compliant under the full (instrumented)
        # agreement
        compliant_label, compliant_elf = next(
            (l, r) for l, r in corpus if l.endswith("-compliant")
        )
        lenient = all_policies
        strict = PolicyRegistry([
            # no exemptions at all: libc's own functions now fail the
            # canary check, so the same bytes must be rejected
            StackProtectionPolicy(exempt_functions=set()),
        ])
        with BatchInspector(lenient, mode="serial", cache=shared) as bi:
            first = bi.inspect_batch([(compliant_label, compliant_elf)])
        assert first.results[0].accepted
        with BatchInspector(strict, mode="serial", cache=shared) as bi:
            second = bi.inspect_batch([(compliant_label, compliant_elf)])
        assert second.summary.cache_hits == 0   # different digest: no hit
        assert not second.results[0].accepted
        assert "stack-protection" in second.results[0].report.policies_failed


class TestSoak:
    def test_many_batches_under_concurrent_submitters(
        self, corpus, baseline, all_policies
    ):
        """One inspector, one shared cache, four submitter threads each
        pushing shuffled fleets — every verdict everywhere must equal
        the sequential baseline."""
        expected = {
            label: wire for (label, _), wire in zip(corpus, baseline)
        }
        inspector = BatchInspector(all_policies, workers=4, mode="thread")
        errors: list[str] = []

        def submitter(seed: int) -> None:
            import random

            rng = random.Random(seed)
            fleet = list(corpus)
            for _ in range(3):
                rng.shuffle(fleet)
                report = inspector.inspect_batch(fleet)
                for item in report.results:
                    if item.error is not None:
                        errors.append(f"{item.label}: {item.error}")
                    elif item.report.serialize() != expected[item.label]:
                        errors.append(f"{item.label}: verdict drift")

        threads = [
            threading.Thread(target=submitter, args=(s,)) for s in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        inspector.close()
        assert not errors, errors[:5]
        # steady state: far fewer inspections than verdicts served
        stats = inspector.cache.stats()
        assert stats.hits > stats.puts
