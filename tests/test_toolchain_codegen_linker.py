"""Compiler + linker: instrumentation idioms, symbols, relocations, GC."""

from __future__ import annotations

import pytest

from repro.elf import read_elf
from repro.errors import LinkError, ToolchainError
from repro.toolchain import (
    Compiler,
    CompilerFlags,
    DataObject,
    FunctionSpec,
    JUMP_TABLE_PREFIX,
    ProgramSpec,
    STACK_CHK_FAIL,
    link,
)
from repro.x86 import Imm, Mem, Reg, decode_all, validate
from tests.conftest import compile_demo, make_demo_spec


def decode_binary(binary):
    img = read_elf(binary.elf)
    text = img.text_sections[0]
    return img, text, decode_all(text.data)


def function_body(img, text, insns, name):
    syms = sorted((s.value for s in img.function_symbols()))
    start = next(s.value for s in img.function_symbols() if s.name == name)
    import bisect

    nxt = bisect.bisect_right(syms, start)
    end = syms[nxt] if nxt < len(syms) else text.vaddr + len(text.data)
    return [i for i in insns if start - text.vaddr <= i.offset < end - text.vaddr]


class TestPlainCompile:
    def test_binary_decodes_and_validates(self, demo_plain):
        img, text, insns = decode_binary(demo_plain)
        roots = [s.value - text.vaddr for s in img.function_symbols()]
        validate(insns, entry=demo_plain.entry_vaddr - text.vaddr, roots=roots)

    def test_insn_count_exact(self, demo_plain):
        _, _, insns = decode_binary(demo_plain)
        assert len(insns) == demo_plain.insn_count

    def test_entry_is_start(self, demo_plain):
        img, _, _ = decode_binary(demo_plain)
        start = next(s for s in img.symbols if s.name == "_start")
        assert img.entry == start.value

    def test_direct_calls_resolve_to_symbols(self, demo_plain):
        img, text, insns = decode_binary(demo_plain)
        starts = {s.value - text.vaddr for s in img.function_symbols()}
        calls = [i for i in insns if i.is_direct_call]
        assert calls, "demo program must contain direct calls"
        assert all(c.target in starts for c in calls)

    def test_compiler_is_deterministic(self, libc):
        a = compile_demo(libc, name="det")
        b = compile_demo(libc, name="det")
        assert a.elf == b.elf


class TestStackProtectorPass:
    def test_prologue_epilogue_idiom(self, libc):
        binary = compile_demo(libc, stack_protector=True)
        img, text, insns = decode_binary(binary)
        body = function_body(img, text, insns, "main")
        canary_loads = [i for i in body if i.reads_fs_offset(0x28)]
        assert len(canary_loads) == 2  # prologue load + epilogue recompute
        # the spill right after the prologue load
        spill = body[body.index(canary_loads[0]) + 1]
        assert spill.mnemonic == "mov"
        assert isinstance(spill.operands[1], Mem)
        assert spill.operands[1].base.num == 4  # (%rsp)
        # jne -> callq __stack_chk_fail
        jnes = [i for i in body if i.mnemonic == "jne"]
        assert jnes
        chk_fail = next(s for s in img.function_symbols()
                        if s.name == STACK_CHK_FAIL)
        tail_calls = [
            i for i in body
            if i.is_direct_call and i.target == chk_fail.value - text.vaddr
        ]
        assert tail_calls

    def test_instrumentation_grows_count(self, libc):
        plain = compile_demo(libc)
        protected = compile_demo(libc, stack_protector=True)
        # ~7-10 extra instructions per function (3 functions + _start)
        assert 0 < protected.insn_count - plain.insn_count < 60

    def test_stack_chk_fail_linked(self, libc):
        binary = compile_demo(libc, stack_protector=True)
        assert STACK_CHK_FAIL in binary.symbols


class TestIfccPass:
    def test_call_site_idiom(self, libc):
        binary = compile_demo(libc, ifcc=True)
        img, text, insns = decode_binary(binary)
        icalls = [i for i in insns if i.is_indirect_call]
        assert icalls
        for call in icalls:
            idx = insns.index(call)
            window = [
                i for i in insns[max(0, idx - 8):idx]
                if i.mnemonic not in ("nop", "nopl")
            ]
            mnemonics = [i.mnemonic for i in window][-4:]
            assert mnemonics == ["lea", "sub", "and", "add"]

    def test_jump_table_structure(self, libc):
        binary = compile_demo(libc, ifcc=True)
        img, text, insns = decode_binary(binary)
        entries = sorted(
            s.value - text.vaddr for s in img.function_symbols()
            if s.name.startswith(JUMP_TABLE_PREFIX)
        )
        assert len(entries) >= 2
        size = len(entries) * 8
        assert size & (size - 1) == 0  # power of two
        by_offset = {i.offset: i for i in insns}
        for e in entries:
            assert by_offset[e].mnemonic == "jmpq" and by_offset[e].length == 5
            assert by_offset[e + 5].mnemonic == "nopl"

    def test_mask_matches_table(self, libc):
        binary = compile_demo(libc, ifcc=True)
        img, text, insns = decode_binary(binary)
        n_entries = sum(
            1 for s in img.function_symbols()
            if s.name.startswith(JUMP_TABLE_PREFIX)
        )
        ands = [
            i for i in insns
            if i.mnemonic == "and" and isinstance(i.operands[0], Imm)
            and isinstance(i.operands[1], Reg)
        ]
        masks = {i.operands[0].value for i in ands}
        assert n_entries * 8 - 8 in masks

    def test_pointer_slots_target_table(self, libc):
        binary = compile_demo(libc, ifcc=True)
        img, text, _ = decode_binary(binary)
        entries = {
            s.value for s in img.function_symbols()
            if s.name.startswith(JUMP_TABLE_PREFIX)
        }
        assert img.relocations
        # the icall slot points at a table entry, not the raw function
        assert any(r.r_addend in entries for r in img.relocations)

    def test_plain_pointer_slots_target_functions(self, libc):
        binary = compile_demo(libc, ifcc=False)
        img, _, _ = decode_binary(binary)
        func_addrs = {s.value for s in img.function_symbols()}
        assert any(r.r_addend in func_addrs for r in img.relocations)


class TestLinker:
    def test_gc_retains_only_imports(self, libc, demo_plain):
        img, _, _ = decode_binary(demo_plain)
        libc_names = {s.name for s in img.function_symbols()} & set(libc.offsets)
        assert libc_names == {"memcpy", "printf", "strlen"}

    def test_libc_units_byte_identical_in_binary(self, libc, demo_plain):
        img, text, _ = decode_binary(demo_plain)
        db = libc.reference_hashes()
        from repro.crypto import sha256_fast

        syms = sorted(s.value for s in img.function_symbols())
        import bisect

        for sym in img.function_symbols():
            if sym.name not in libc.offsets:
                continue
            i = bisect.bisect_right(syms, sym.value)
            end = syms[i] if i < len(syms) else text.vaddr + len(text.data)
            body = text.data[sym.value - text.vaddr:end - text.vaddr]
            assert sha256_fast(body) == db[sym.name], sym.name

    def test_undefined_symbol(self, libc):
        spec = ProgramSpec(
            name="bad",
            functions=[FunctionSpec("main", direct_calls=["ghost"])],
            libc_imports=["ghost"],  # passes validate, fails at link
        )
        prog = Compiler().compile(spec)
        with pytest.raises((LinkError, KeyError)):
            link(prog, libc)

    def test_client_libc_collision(self, libc):
        spec = ProgramSpec(
            name="bad", functions=[FunctionSpec("main"), FunctionSpec("memcpy")]
        )
        prog = Compiler().compile(spec)
        with pytest.raises(LinkError):
            link(prog, libc)

    def test_data_objects_and_relocs(self, libc):
        spec = make_demo_spec("data-test")
        spec.data_objects.append(
            DataObject("table", 24, pointers=[(0, "main"), (8, "helper")])
        )
        binary = link(Compiler().compile(spec), libc)
        img = read_elf(binary.elf)
        table = next(s for s in img.symbols if s.name == "table")
        targets = {r.r_addend for r in img.relocations
                   if table.value <= r.r_offset < table.value + 24}
        assert binary.symbols["main"] in targets
        assert binary.symbols["helper"] in targets
        # initialised slot content equals the link-time vaddr (pre-bias)
        data = img.section(".data").data
        off = table.value - img.section(".data").vaddr
        assert int.from_bytes(data[off:off + 8], "little") == binary.symbols["main"]

    def test_functions_bundle_aligned(self, demo_instrumented):
        img, _, _ = decode_binary(demo_instrumented)
        for s in img.function_symbols():
            if not s.name.startswith(JUMP_TABLE_PREFIX):
                assert s.value % 32 == 0, s.name


class TestSpecValidation:
    def test_duplicate_function_names(self):
        spec = ProgramSpec(name="d", functions=[FunctionSpec("a"), FunctionSpec("a")])
        with pytest.raises(ValueError):
            spec.validate()

    def test_unknown_callee(self):
        spec = ProgramSpec(
            name="d", functions=[FunctionSpec("a", direct_calls=["nope"])]
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_icalls_need_targets(self):
        spec = ProgramSpec(
            name="d", functions=[FunctionSpec("a", indirect_calls=1)]
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_start_requires_main(self, libc):
        spec = ProgramSpec(name="d", functions=[FunctionSpec("lonely")])
        with pytest.raises(ToolchainError):
            Compiler().compile(spec)

    def test_bad_data_object(self):
        with pytest.raises(ValueError):
            DataObject("x", 8, init=b"123456789")
        with pytest.raises(ValueError):
            DataObject("x", 8, pointers=[(4, "sym")])  # unaligned/overflow
