#!/usr/bin/env python3
"""A cloud provider's SLA-compliance day: five tenants, five outcomes.

The paper's motivation (section 1): without EnGarde, SGX makes tenant
enclaves opaque and the provider cannot enforce any SLA on them — malware
could hide in an enclave.  With EnGarde, the provider checks the agreed
policies at provisioning time without ever seeing tenant plaintext.

This example provisions five tenants against the same policy set:

  tenant-a  fully instrumented, genuine musl           -> accepted
  tenant-b  compiled without stack protection          -> rejected
  tenant-c  indirect calls without IFCC                -> rejected
  tenant-d  linked against a stale musl (v1.0.4)       -> rejected
  tenant-e  ships a corrupted/obfuscated binary        -> rejected (disasm)

Run:  python examples/sla_compliance_audit.py
"""

from repro.core import (
    CloudProvider,
    EnclaveClient,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
    provision,
)
from repro.sgx import SgxParams
from repro.toolchain import (
    Compiler, CompilerFlags, FunctionSpec, ProgramSpec, build_libc, link,
)


def tenant_app(name: str) -> ProgramSpec:
    return ProgramSpec(
        name=name,
        functions=[
            FunctionSpec("main", n_blocks=3,
                         direct_calls=["step", "memcpy", "printf"],
                         indirect_calls=1),
            FunctionSpec("step", n_blocks=2, direct_calls=["strlen"],
                         address_taken=True),
            FunctionSpec("job", n_blocks=1, address_taken=True),
        ],
        libc_imports=["memcpy", "printf", "strlen"],
    )


def main() -> None:
    libc = build_libc()           # the agreed musl v1.0.5
    libc_stale = build_libc("1.0.4")

    policies = PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])

    full = CompilerFlags(stack_protector=True, ifcc=True)
    no_sp = CompilerFlags(stack_protector=False, ifcc=True)
    no_ifcc = CompilerFlags(stack_protector=True, ifcc=False)

    tenants = {
        "tenant-a": link(Compiler(full).compile(tenant_app("a")), libc).elf,
        "tenant-b": link(Compiler(no_sp).compile(tenant_app("b")), libc).elf,
        "tenant-c": link(Compiler(no_ifcc).compile(tenant_app("c")), libc).elf,
        "tenant-d": link(Compiler(full).compile(tenant_app("d")), libc_stale).elf,
        "tenant-e": b"\x7fELF-but-actually-garbage" + bytes(4000),
    }

    print(f"{'tenant':<10} {'verdict':<9} {'detail'}")
    print("-" * 64)
    accepted = []
    for name, binary in tenants.items():
        provider = CloudProvider(
            policies,
            params=SgxParams(epc_pages=4096, heap_initial_pages=128),
            rsa_bits=1024, client_pages=64, enclave_pages=0x2000,
        )
        client = EnclaveClient(binary, policies=policies, benchmark=name)
        result = provision(provider, client)

        if result.accepted:
            detail = (f"sealed enclave, "
                      f"{len(result.report.executable_pages)} code page(s)")
            accepted.append(name)
        elif result.report.rejected_stage:
            detail = f"structural rejection at stage {result.report.rejected_stage!r}"
        else:
            detail = "failed: " + ", ".join(result.report.policies_failed)
        print(f"{name:<10} {'ACCEPT' if result.accepted else 'reject':<9} {detail}")

        # The provider acted without learning tenant content: EPC pages
        # are ciphertext, the report carries only a verdict + addresses.
        assert binary[:48] not in result.report.serialize()

    print("-" * 64)
    print(f"{len(accepted)}/5 tenants admitted: {', '.join(accepted)}")
    print("\nEach rejected tenant got its verdict over the authenticated "
          "channel,\nso a provider falsely claiming non-compliance would be "
          "detectable (section 3).")


if __name__ == "__main__":
    main()
