#!/usr/bin/env python3
"""Mutual trust, step by step: measurement, attestation, and the MITM test.

The paper's trust argument (sections 2-3) has three load-bearing pieces:

1. **Measurement**: MRENCLAVE is a SHA-256 digest of the enclave build
   log, so both parties can *predict* it for the agreed EnGarde build.
2. **Quotes**: the machine's quoting enclave signs (measurement, channel
   key fingerprint, challenge) with a device key — binding "the enclave I
   measured" to "the key I'm about to use".
3. **Detection**: any deviation — a different policy set, a stale quote,
   a substituted channel key — is caught *before* the client sends a byte.

Run:  python examples/attestation_walkthrough.py
"""

from repro.core import (
    CloudProvider,
    EnclaveClient,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    expected_mrenclave,
)
from repro.crypto import HmacDrbg, generate_keypair
from repro.errors import AttestationError, ProtocolError
from repro.net import SocketPair
from repro.sgx import SgxParams, verify_quote
from repro.toolchain import build_libc


def make_provider(policies) -> CloudProvider:
    return CloudProvider(
        policies,
        params=SgxParams(epc_pages=2048, heap_initial_pages=64),
        rsa_bits=1024, client_pages=64, enclave_pages=0x2000,
    )


def main() -> None:
    libc = build_libc()
    agreed = PolicyRegistry([LibraryLinkingPolicy(libc.reference_hashes())])

    # ------------------------------------------------------------------
    print("[1] Both parties predict MRENCLAVE from EnGarde's public build")
    predicted = expected_mrenclave(agreed, heap_pages=64, client_pages=64,
                                   enclave_pages=0x2000)
    print(f"    predicted: {predicted.hex()[:32]}...")

    provider = make_provider(agreed)
    pair = SocketPair()
    session = provider.start_session(pair.right)
    actual = session.runtime.enclave.mrenclave
    print(f"    actual:    {actual.hex()[:32]}...")
    assert actual == predicted
    print("    -> identical: attestation has a ground truth\n")

    # ------------------------------------------------------------------
    print("[2] Quote verification binds measurement + channel key + nonce")
    challenge = b"fresh-nonce-0001"
    quote = provider.attest(session, challenge)
    verify_quote(quote, provider.quoting_enclave.device_public_key,
                 expected_mrenclave=predicted, challenge=challenge)
    fingerprint = quote.report_data[:32]
    print(f"    quote verified; attested channel-key fingerprint: "
          f"{fingerprint.hex()[:24]}...\n")

    # ------------------------------------------------------------------
    print("[3] Attack: provider swaps the policy set (weaker EnGarde)")
    weaker = PolicyRegistry([IfccPolicy()])
    rogue = make_provider(weaker)
    rogue_pair = SocketPair()
    rogue_session = rogue.start_session(rogue_pair.right)
    rogue_quote = rogue.attest(rogue_session, challenge)
    try:
        verify_quote(rogue_quote, rogue.quoting_enclave.device_public_key,
                     expected_mrenclave=predicted, challenge=challenge)
        raise SystemExit("UNSOUND: weaker policy set went unnoticed")
    except AttestationError as exc:
        print(f"    caught: {exc}\n")

    # ------------------------------------------------------------------
    print("[4] Attack: stale quote replay")
    try:
        verify_quote(quote, provider.quoting_enclave.device_public_key,
                     expected_mrenclave=predicted, challenge=b"other-nonce")
        raise SystemExit("UNSOUND: replay went unnoticed")
    except AttestationError as exc:
        print(f"    caught: {exc}\n")

    # ------------------------------------------------------------------
    print("[5] Attack: man-in-the-middle on the channel key")
    # The provider relays a *different* RSA key than the one in the quote
    # (e.g. its own, to decrypt the client's content in transit).
    mitm_key = generate_keypair(1024, HmacDrbg(b"mitm"))
    mitm_pair = SocketPair()
    pub = mitm_key.public_key
    n_bytes = pub.n.to_bytes(pub.size_bytes, "big")
    import struct

    mitm_pair.right.send(
        b"EG-PUBKEY" + struct.pack(">II", pub.e, len(n_bytes)) + n_bytes
    )
    from repro.crypto.channel import client_handshake

    try:
        client_handshake(mitm_pair.left, HmacDrbg(b"client"),
                         expected_fingerprint=fingerprint)
        raise SystemExit("UNSOUND: MITM key accepted")
    except ProtocolError as exc:
        print(f"    caught: {exc}\n")

    print("All three attacks detected before any client content was sent.")


if __name__ == "__main__":
    main()
