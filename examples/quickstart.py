#!/usr/bin/env python3
"""Quickstart: provision a policy-compliant enclave end to end.

This walks the full EnGarde protocol from the paper (ICDCS 2017):

1. the cloud provider and client agree on policies,
2. the provider boots a fresh enclave containing EnGarde,
3. SGX attestation proves to the client that exactly that EnGarde build
   (policies included) is in the enclave, and binds the channel key to it,
4. the client streams its binary over the encrypted channel,
5. EnGarde disassembles, checks the policies, loads the image,
6. the host pins W^X page permissions and seals the enclave.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CloudProvider,
    EnclaveClient,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
    provision,
)
from repro.sgx import SgxParams
from repro.toolchain import Compiler, CompilerFlags, FunctionSpec, ProgramSpec, build_libc, link


def main() -> None:
    print("=== EnGarde quickstart ===\n")

    # -- 1. the agreed policy set ---------------------------------------
    print("[1] Building the agreed policy set (all three paper policies)")
    libc = build_libc()  # synthetic musl v1.0.5 + golden hash database
    policies = PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])
    print(f"    policies: {', '.join(policies.names())}\n")

    # -- 2. the client compiles its application -------------------------
    print("[2] Client compiles its app with the required instrumentation")
    spec = ProgramSpec(
        name="hello-enclave",
        functions=[
            FunctionSpec("main", n_blocks=4,
                         direct_calls=["handler", "memcpy", "printf"],
                         indirect_calls=1),
            FunctionSpec("handler", n_blocks=2, direct_calls=["strlen"],
                         address_taken=True),
            FunctionSpec("worker", n_blocks=2, address_taken=True),
        ],
        libc_imports=["memcpy", "printf", "strlen"],
    )
    flags = CompilerFlags(stack_protector=True, ifcc=True)
    binary = link(Compiler(flags).compile(spec), libc)
    print(f"    {binary.insn_count} instructions, "
          f"{len(binary.elf):,} byte ELF PIE, "
          f"{binary.relocation_count} relocation(s)\n")

    # -- 3-6. the protocol ------------------------------------------------
    print("[3] Provider boots the EnGarde enclave; client attests and "
          "streams the binary")
    provider = CloudProvider(
        policies,
        params=SgxParams(epc_pages=4096, heap_initial_pages=256),
        rsa_bits=1024,
        client_pages=64,
        enclave_pages=0x2000,
    )
    client = EnclaveClient(binary.elf, policies=policies,
                           benchmark="hello-enclave")
    result = provision(provider, client)

    print(f"    verdict: {'ACCEPTED' if result.accepted else 'REJECTED'}")
    for pr in result.outcome.policy_results:
        print(f"      - {pr.policy}: "
              f"{'compliant' if pr.compliant else 'VIOLATION'} {pr.stats}")
    print(f"    client's authenticated verdict matches: "
          f"{result.client_verdict.compliant == result.report.compliant}\n")

    # -- what the provider can and cannot see ----------------------------
    print("[4] Provider-side view after provisioning")
    loaded = result.outcome.loaded
    print(f"    executable pages reported to host: "
          f"{len(result.report.executable_pages)}")
    print(f"    enclave sealed: {result.runtime.enclave.sealed}")
    ct = provider.host.peek_enclave_memory(
        result.runtime, result.report.executable_pages[0]
    )
    plain = result.runtime.enclave.read(result.report.executable_pages[0], 64)
    print(f"    host's view of a code page (ciphertext): {ct[:16].hex()}...")
    print(f"    actual enclave plaintext differs:        {plain[:16].hex()}...\n")

    # -- the cost profile --------------------------------------------------
    print("[5] Cycle accounting (the paper's three evaluation columns)")
    meter = result.meter
    for phase in ("disassembly", "policy", "loading"):
        print(f"    {phase:12s} {meter.phase_cycles(phase):>12,} cycles")
    print(f"    SGX instructions executed: {meter.sgx_instruction_count} "
          f"(10,000 cycles each)")
    print("\nDone: only policy-compliant code entered the enclave, and the "
          "provider never saw a plaintext byte.")


if __name__ == "__main__":
    main()
