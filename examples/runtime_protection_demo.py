#!/usr/bin/env python3
"""Running the provisioned enclave — watching the protections fire.

The paper's EnGarde inspects statically and notes runtime enforcement as
future work.  This reproduction includes that extension: an x86-64
interpreter executes the loaded client image *inside* the simulated
enclave, against EPC-permission-checked memory.  This demo shows three
protections working at runtime:

  1. a buffer overflow clobbers the stack canary -> the instrumentation
     the stack-protection policy verified statically actually fires;
  2. a corrupted function pointer escapes control flow without IFCC, but
     is confined to the jump table with IFCC;
  3. the sealed W^X pages block self-modification and data execution.

Run:  python examples/runtime_protection_demo.py
"""

from repro.core import (
    CloudProvider, EnclaveClient, EnclaveExecutor, IfccPolicy,
    LibraryLinkingPolicy, PolicyRegistry, StackProtectionPolicy, provision,
)
from repro.sgx import SgxParams
from repro.toolchain import (
    Compiler, CompilerFlags, FunctionSpec, ProgramSpec, build_libc, link,
)
from repro.toolchain.codegen import CompiledFunction
from repro.x86 import Assembler, Mem, RAX, RCX, RSP


def make_provider(policies):
    return CloudProvider(
        policies, params=SgxParams(epc_pages=2048, heap_initial_pages=64),
        rsa_bits=1024, client_pages=64, enclave_pages=0x2000,
    )


def provision_and_get(binary, policies):
    result = provision(make_provider(policies), EnclaveClient(
        binary.elf, policies=policies))
    assert result.accepted, result.report
    return result


def overflowing_main() -> CompiledFunction:
    """A main() whose 'buffer write' clobbers the canary at (%rsp)."""
    asm = Assembler()
    asm.alu_imm("sub", 24, RSP)
    asm.mov_load(Mem(seg="fs", disp=0x28), RAX)   # canary prologue
    asm.mov_store(RAX, Mem(base=RSP))
    asm.mov_imm(0x4141414141414141, RCX)          # "AAAAAAAA" overflow
    asm.mov_store(RCX, Mem(base=RSP))             # ...lands on the canary
    fail = asm.label("fail")
    asm.mov_load(Mem(seg="fs", disp=0x28), RAX)   # canary epilogue
    asm.alu_load("cmp", Mem(base=RSP), RAX)
    asm.jcc_label("jne", fail)
    asm.alu_imm("add", 24, RSP)
    asm.ret()
    asm.bind(fail)
    asm.call_symbol("__stack_chk_fail")
    asm.ud2()
    return CompiledFunction("main", asm.finish(), asm.instruction_count,
                            list(asm.external_fixups))


def main() -> None:
    libc = build_libc()

    # ------------------------------------------------------------------
    print("[1] Stack smashing: the statically-verified canary fires")
    spec = ProgramSpec(name="smash", functions=[FunctionSpec("main")])
    program = Compiler(CompilerFlags(stack_protector=True)).compile(spec)
    program.functions = [
        overflowing_main() if f.name == "main" else f
        for f in program.functions
    ]
    binary = link(program, libc)
    policies = PolicyRegistry(
        [StackProtectionPolicy(exempt_functions=set(libc.offsets))]
    )
    result = provision_and_get(binary, policies)
    print("    static check: PASSED (the instrumentation is present)")
    outcome = EnclaveExecutor(result.runtime.enclave, result.outcome.loaded,
                              symbols=binary.symbols).run()
    print(f"    runtime:      {outcome.outcome.upper()} after "
          f"{outcome.instructions_executed} instructions ({outcome.detail})\n")

    # ------------------------------------------------------------------
    print("[2] Forward-edge CFI: corrupting a function pointer")
    for use_ifcc in (False, True):
        spec = ProgramSpec(
            name=f"cfi-{use_ifcc}",
            functions=[
                FunctionSpec("main", n_blocks=1, ops_per_block=(2, 2),
                             indirect_calls=1),
                FunctionSpec("victim", n_blocks=1, ops_per_block=(2, 2),
                             address_taken=True),
            ],
        )
        binary = link(Compiler(CompilerFlags(ifcc=use_ifcc)).compile(spec), libc)
        policies = (PolicyRegistry([IfccPolicy()]) if use_ifcc else
                    PolicyRegistry([LibraryLinkingPolicy(libc.reference_hashes())]))
        result = provision_and_get(binary, policies)
        loaded = result.outcome.loaded
        enclave = result.runtime.enclave

        # the "heap corruption": point the fnptr at a data page
        slot = next(v for n, v in binary.symbols.items()
                    if n.startswith("__fnptr_main_"))
        evil_target = loaded.writable_pages[0] + 0x40
        enclave.write(loaded.load_bias + slot,
                      evil_target.to_bytes(8, "little"))

        outcome = EnclaveExecutor(enclave, loaded, symbols=binary.symbols).run()
        label = "with IFCC   " if use_ifcc else "without IFCC"
        print(f"    {label}: {outcome.outcome:<9} "
              f"({outcome.detail or 'masking confined the call to the jump table'})")
    print()

    # ------------------------------------------------------------------
    print("[3] W^X after sealing")
    from repro.core.runtime import EnclaveMemoryBus
    from repro.x86.interp import ExecutionFault

    bus = EnclaveMemoryBus(enclave)
    try:
        bus.write(loaded.executable_pages[0], b"\xcc")
        print("    UNSOUND: code page was writable")
    except ExecutionFault as exc:
        print(f"    writing a code page:   blocked ({exc})")
    exec_attempt = EnclaveExecutor(enclave, loaded, symbols=binary.symbols)
    outcome = exec_attempt.run(entry=loaded.writable_pages[0])
    print(f"    executing a data page: {outcome.outcome} ({outcome.detail})")


if __name__ == "__main__":
    main()
