#!/usr/bin/env python3
"""Writing your own policy module.

EnGarde's architecture "supports plugging in policy modules" (section 3):
a module sees the decoded instruction buffer + symbol hash table and
returns a verdict.  This example adds two custom policies beyond the
paper's three:

* **NoSyscallPolicy** — enclave code cannot invoke OS services (section
  2), so any ``syscall``/``int3``/``hlt`` instruction in the binary is a
  red flag: it would fault at runtime, or worse, is a probe.
* **FunctionSizeBudgetPolicy** — an SLA-style resource bound: no function
  may exceed N instructions (say, to bound the provider's own analysis
  costs).

Run:  python examples/custom_policy.py
"""

from repro.core import (
    CloudProvider,
    EnclaveClient,
    PolicyRegistry,
    provision,
)
from repro.core.policy import PolicyContext, PolicyModule, PolicyResult
from repro.sgx import SgxParams
from repro.toolchain import (
    Compiler, CompilerFlags, FunctionSpec, ProgramSpec, build_libc, link,
)
from repro.x86 import Assembler, RAX


class NoSyscallPolicy(PolicyModule):
    """Reject binaries containing syscall/int3/hlt instructions."""

    name = "no-syscall"
    FORBIDDEN = ("syscall", "int3", "hlt")

    def check(self, ctx: PolicyContext) -> PolicyResult:
        result = self.result()
        ctx.meter.charge("policy_scan_insn", len(ctx.instructions))
        for insn in ctx.instructions:
            if insn.mnemonic in self.FORBIDDEN:
                result.add_violation(
                    f"{insn.mnemonic} at +{insn.offset:#x}: enclave code "
                    "cannot invoke OS services"
                )
        result.stats["instructions_scanned"] = len(ctx.instructions)
        return result


class FunctionSizeBudgetPolicy(PolicyModule):
    """Reject binaries with any function larger than the agreed budget."""

    name = "function-size-budget"

    def __init__(self, max_instructions: int = 5_000,
                 exempt: set[str] | frozenset[str] = frozenset()) -> None:
        self.max_instructions = max_instructions
        self.exempt = frozenset(exempt)

    def check(self, ctx: PolicyContext) -> PolicyResult:
        result = self.result()
        for start, name in ctx.function_starts():
            if name in self.exempt:
                continue
            first, last = ctx.function_extent(start)
            size = last - first
            if size > self.max_instructions:
                result.add_violation(
                    f"function {name!r} has {size} instructions "
                    f"(budget {self.max_instructions})"
                )
        return result


def build_client(with_syscall: bool, libc):
    """A small app; optionally smuggle a syscall in via a handwritten fn."""
    spec = ProgramSpec(
        name="custom",
        functions=[FunctionSpec("main", n_blocks=2, direct_calls=["memcpy"])],
        libc_imports=["memcpy"],
    )
    program = Compiler(CompilerFlags()).compile(spec)
    if with_syscall:
        from repro.toolchain.codegen import CompiledFunction

        asm = Assembler()
        asm.mov_imm(60, RAX)  # exit(2)'s syscall number
        asm.raw(b"\x0f\x05", 1)  # syscall
        asm.ret()
        program.functions.append(CompiledFunction(
            name="sneaky_exit", code=asm.finish(),
            insn_count=asm.instruction_count,
        ))
    return link(program, libc)


def run_one(label: str, binary, policies) -> None:
    provider = CloudProvider(
        policies, params=SgxParams(epc_pages=2048, heap_initial_pages=64),
        rsa_bits=1024, client_pages=64, enclave_pages=0x2000,
    )
    client = EnclaveClient(binary.elf, policies=policies, benchmark=label)
    result = provision(provider, client)
    verdict = "ACCEPT" if result.accepted else "reject"
    detail = ""
    for pr in result.outcome.policy_results:
        if not pr.compliant:
            detail = f"-> {pr.violations[0]}"
    print(f"{label:<28} {verdict:<8} {detail}")


def main() -> None:
    libc = build_libc()
    policies = PolicyRegistry([
        NoSyscallPolicy(),
        FunctionSizeBudgetPolicy(max_instructions=2_000,
                                 exempt=set(libc.offsets)),
    ])
    print("policy set:", ", ".join(policies.names()), "\n")

    run_one("clean client", build_client(False, libc), policies)
    run_one("client with a syscall", build_client(True, libc), policies)

    # And the size budget: a client with one huge function.
    spec = ProgramSpec(
        name="bloated",
        functions=[
            FunctionSpec("main", n_blocks=1, direct_calls=["huge"]),
            FunctionSpec("huge", n_blocks=80, ops_per_block=(40, 40)),
        ],
    )
    binary = link(Compiler(CompilerFlags()).compile(spec), libc)
    run_one("client over size budget", binary, policies)

    print("\nBoth custom modules plug into the same pipeline as the "
          "paper's three;\nthe enclave measurement (and hence attestation) "
          "covers the loaded policy set.")


if __name__ == "__main__":
    main()
